"""Declarative fault plans for the simulated cluster.

A :class:`FaultPlan` describes *what can go wrong* during a run — which
links drop messages and how often, which threads run slow, which NICs
degrade during which virtual-time windows, and which threads crash when.
The plan is pure data: it never touches wall-clock time or global RNG
state.  A :class:`~repro.faults.injector.FaultInjector` turns the plan
into deterministic per-run decisions (seeded ``numpy`` Generator), and
every consequence is charged to the virtual clocks, so two runs of the
same plan on the same input produce identical modeled times.

The topology assumed by the loss model matches the paper's platform: a
star of SMP nodes around one switch, so "a link" is a node's uplink
(NIC <-> switch).  ``loss`` sets the default per-message loss
probability on every link; ``link_loss`` overrides single nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["RetryPolicy", "NicDegradation", "CrashEvent", "NodeLossEvent", "FaultPlan"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff/retry semantics for lost simulated messages.

    A dropped message is detected after ``timeout`` seconds of virtual
    time, waits an exponential backoff (``backoff_base * backoff_factor
    ** (attempt - 1)``, capped at ``backoff_cap``), and is retransmitted.
    A message that fails ``max_attempts`` consecutive times raises
    :class:`~repro.errors.FaultError` — the run aborts rather than spin
    forever.  The defaults mirror real transports: the retransmission
    timer (~1 ms) is orders of magnitude above the HPS round trip.
    """

    timeout: float = 1.0e-3
    backoff_base: float = 1.0e-4
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0e-3
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.timeout < 0 or self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError(f"retry times must be non-negative: {self}")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigError("attempt is 1-based")
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return float(min(raw, self.backoff_cap))

    def penalty_seconds(self, nretries) -> np.ndarray:
        """Total detection + backoff time for ``nretries`` consecutive
        retries (vectorized over threads; excludes the retransmit wire
        cost, which the caller prices with its own message cost).

        ``sum_{i=1..r} (timeout + min(base * factor**(i-1), cap))`` in
        closed form, so the charge is exact however large ``r`` grows.
        """
        r = np.asarray(nretries, dtype=np.float64)
        if self.backoff_base == 0.0:
            return r * self.timeout
        f = self.backoff_factor
        if f == 1.0:
            backoff = r * min(self.backoff_base, self.backoff_cap)
        else:
            # Retries 1..k grow geometrically; k+1.. sit at the cap.
            k = np.floor(np.log(self.backoff_cap / self.backoff_base) / np.log(f)) + 1.0
            grow = np.minimum(r, np.maximum(k, 0.0))
            backoff = self.backoff_base * (f**grow - 1.0) / (f - 1.0)
            backoff += np.maximum(r - grow, 0.0) * self.backoff_cap
        return r * self.timeout + backoff


@dataclass(frozen=True)
class NicDegradation:
    """A transient NIC slowdown window on one node.

    While ``node``'s virtual clock sits in ``[start, end)``, every
    communication charge issued by its threads is multiplied by
    ``factor`` (link flapping, ECC storms, a misbehaving neighbor port).
    """

    node: int
    start: float
    end: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("degradation node must be >= 0")
        if not 0.0 <= self.start < self.end:
            raise ConfigError(f"degradation window must satisfy 0 <= start < end: {self}")
        if self.factor < 1.0:
            raise ConfigError("degradation factor must be >= 1")


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled crash of one simulated thread.

    The crash fires at the first synchronization point (barrier or
    allreduce) after the thread's virtual clock passes ``at_time``; the
    thread spends ``recovery`` seconds restarting while every other
    thread waits, and the enclosing round is replayed from its
    checkpoint.  Each event fires at most once.
    """

    thread: int
    at_time: float
    recovery: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.thread < 0:
            raise ConfigError("crash thread must be >= 0")
        if self.at_time < 0 or self.recovery < 0:
            raise ConfigError("crash times must be non-negative")


@dataclass(frozen=True)
class NodeLossEvent:
    """A scheduled *permanent* loss of one simulated node.

    Fires at the first synchronization point after any of the node's
    threads' virtual clocks pass ``at_time``.  Unlike a
    :class:`CrashEvent` the node never restarts: its owner blocks are
    gone, the membership must change, and the run either recovers
    through :mod:`repro.resilience` (reconstruct from replicas/parity,
    remap onto the survivors or a cold spare, replay the round) or
    aborts with :class:`~repro.errors.UnrecoverableLossError`.  Each
    event fires at most once; events naming an already-dead node are
    skipped.
    """

    node: int
    at_time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("lost node must be >= 0")
        if self.at_time < 0:
            raise ConfigError("loss time must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of a run's injected faults.

    Parameters
    ----------
    seed:
        Seed for the injector's ``numpy`` Generator.  All randomness
        (which message is dropped, how many retransmits a batch needs)
        derives from it; no wall-clock entropy is ever consulted.
    loss:
        Default per-message loss probability on every node uplink.
    link_loss:
        Per-node overrides of ``loss`` (node id -> probability).
    stragglers:
        Thread id -> slowdown multiplier (>= 1).  A straggler's every
        charge — compute and communication — is stretched by its factor.
    nic_degradations, crashes:
        Transient NIC windows and scheduled crash events.
    node_losses:
        Scheduled :class:`NodeLossEvent` permanent node failures —
        membership-changing, unlike the transient ``crashes``.
    corruption:
        Silent bit-flip rate in the owner blocks of protected shared
        arrays: expected flips *per element per second of modeled
        time*.  Flips arrive as a Poisson process on the virtual clock
        and fire at synchronization points; each event is consumed once,
        so a replayed round does not re-suffer the same flip.
    payload_corruption:
        Per-record probability that an in-flight collective payload
        element (GetD/SetD/SetDMin buffer) is silently flipped on the
        wire.  Applies only to multi-node transfers.
    retry:
        The :class:`RetryPolicy` priced against lost messages.
    """

    seed: int = 0
    loss: float = 0.0
    link_loss: Mapping[int, float] = field(default_factory=dict)
    stragglers: Mapping[int, float] = field(default_factory=dict)
    nic_degradations: Tuple[NicDegradation, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()
    node_losses: Tuple[NodeLossEvent, ...] = ()
    corruption: float = 0.0
    payload_corruption: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for prob in (self.loss, *self.link_loss.values()):
            if not 0.0 <= prob < 1.0:
                raise ConfigError(f"loss probability must be in [0, 1): got {prob}")
        if self.corruption < 0.0:
            raise ConfigError(f"corruption rate must be >= 0: got {self.corruption}")
        if not 0.0 <= self.payload_corruption < 1.0:
            raise ConfigError(
                f"payload_corruption must be in [0, 1): got {self.payload_corruption}"
            )
        for thread, factor in self.stragglers.items():
            if thread < 0 or factor < 1.0:
                raise ConfigError(
                    f"straggler factors must be >= 1 on valid threads: {thread}: {factor}"
                )
        object.__setattr__(self, "nic_degradations", tuple(self.nic_degradations))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "node_losses", tuple(self.node_losses))

    @property
    def any_faults(self) -> bool:
        """False iff the plan is a no-op (the runtime then skips the
        fault layer entirely, keeping modeled times bit-identical to a
        run with no plan at all)."""
        return bool(
            self.loss > 0.0
            or any(p > 0.0 for p in self.link_loss.values())
            or any(f > 1.0 for f in self.stragglers.values())
            or self.nic_degradations
            or self.crashes
            or self.node_losses
            or self.corruption > 0.0
            or self.payload_corruption > 0.0
        )

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    @property
    def has_corruption(self) -> bool:
        return self.corruption > 0.0 or self.payload_corruption > 0.0

    @property
    def has_node_loss(self) -> bool:
        return bool(self.node_losses)

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def lossy(cls, loss: float, seed: int = 0, retry: RetryPolicy | None = None) -> "FaultPlan":
        """Uniform message loss on every link."""
        return cls(seed=seed, loss=loss, retry=retry or RetryPolicy())

    @classmethod
    def from_cli(
        cls,
        loss: float,
        stragglers: int,
        seed: int,
        total_threads: int,
        straggler_factor: float = 4.0,
        corruption: float = 0.0,
        payload_corruption: float = 0.0,
        node_loss_at: float = 0.0,
        node_loss_node: int = 1,
    ) -> "FaultPlan | None":
        """Build the plan behind ``--fault-loss/--fault-stragglers/
        --fault-corruption/--fault-payload-corruption/--fault-node-loss``.

        Straggler threads are drawn deterministically from ``seed`` (a
        dedicated Generator, so the choice does not perturb the
        injector's own stream).  ``node_loss_at > 0`` schedules a
        *permanent* loss of ``node_loss_node`` at that modeled time.
        Returns ``None`` when nothing is asked for, so the zero-overhead
        default path stays engaged.
        """
        if loss < 0.0:
            raise ConfigError(f"loss probability must be in [0, 1): got {loss}")
        if stragglers < 0:
            raise ConfigError(f"straggler count must be >= 0: got {stragglers}")
        if node_loss_at < 0.0:
            raise ConfigError(f"node loss time must be >= 0: got {node_loss_at}")
        if (
            loss == 0.0 and stragglers == 0 and corruption == 0.0
            and payload_corruption == 0.0 and node_loss_at == 0.0
        ):
            return None
        if stragglers > total_threads:
            raise ConfigError(
                f"cannot make {stragglers} stragglers out of {total_threads} threads"
            )
        slow: dict[int, float] = {}
        if stragglers > 0:
            picker = np.random.default_rng(seed)
            chosen = picker.choice(total_threads, size=stragglers, replace=False)
            slow = {int(t): straggler_factor for t in chosen}
        losses = (
            (NodeLossEvent(node=node_loss_node, at_time=node_loss_at),)
            if node_loss_at > 0.0 else ()
        )
        return cls(
            seed=seed,
            loss=loss,
            stragglers=slow,
            corruption=corruption,
            payload_corruption=payload_corruption,
            node_losses=losses,
        )
