"""Round-boundary checkpointing for crash-and-recover solvers.

The iterative solvers (CC grafting, MST Borůvka) snapshot their mutable
state — the label/forest shared arrays and the live edge partitions — at
the top of every round.  When the runtime raises
:class:`~repro.errors.ThreadCrash` mid-round, the solver restores the
snapshot and replays only the lost round: graceful degradation instead
of aborting, at the cost of one streamed pass per round to write the
checkpoint (charged to the ``Fault`` trace category, so fault-tolerance
overhead is visible in the breakdown).

By default checkpointing engages only when the active plan schedules
crashes; with a crash-free plan (or no plan) ``save``/``restore`` are
no-ops and the run's modeled time is untouched.  Callers that need
protection without scheduled crashes — the :mod:`repro.integrity`
verify-and-repair path — pass ``enabled=True`` explicitly.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from ..errors import FaultError
from ..runtime.trace import Category

__all__ = ["RoundCheckpointer"]


class RoundCheckpointer:
    """Snapshot/restore of one round's mutable solver state.

    ``arrays`` values are NumPy arrays copied on save (shared-array
    payloads the round mutates in place); keyword ``refs`` are stored by
    reference (immutable-by-convention objects such as
    :class:`~repro.runtime.partitioned.PartitionedArray`, which the
    solvers rebind but never mutate).
    """

    def __init__(self, rt, enabled: "bool | None" = None) -> None:
        self.rt = rt
        if enabled is None:
            # Default: engage exactly when the plan can crash a thread.
            enabled = rt.faults is not None and rt.faults.plan.has_crashes
        self.enabled = bool(enabled)
        self._arrays: Dict[str, np.ndarray] = {}
        self._refs: Dict[str, Any] = {}

    def _charge_pass(self, total_elems: int) -> None:
        """One streamed pass over the checkpointed payload, split evenly
        across threads (each thread persists its own partition)."""
        per_thread = float(total_elems) / max(self.rt.s, 1)
        self.rt.charge(Category.FAULT, self.rt.cost.seq_access_time(per_thread))

    def save(self, arrays: Mapping[str, np.ndarray] | None = None, **refs: Any) -> None:
        """Snapshot the round's state (no-op while disabled)."""
        if not self.enabled:
            return
        arrays = arrays or {}
        self._arrays = {name: np.array(value, copy=True) for name, value in arrays.items()}
        self._refs = dict(refs)
        self._charge_pass(sum(a.size for a in self._arrays.values()))

    def restore(self) -> Dict[str, Any]:
        """Return the last snapshot (array copies stay owned by the
        checkpointer, so a second crash in the replayed round restores
        the same state)."""
        if not self.enabled or (not self._arrays and not self._refs):
            raise FaultError("no checkpoint to restore")
        self.rt.counters.add(checkpoint_restores=1)
        self._charge_pass(sum(a.size for a in self._arrays.values()))
        state: Dict[str, Any] = {name: arr.copy() for name, arr in self._arrays.items()}
        state.update(self._refs)
        return state
