"""Fault injection for the simulated PGAS cluster.

The paper's UPC runs assume a healthy interconnect; this package lets
the reproduction stop assuming.  A :class:`FaultPlan` declares lossy
links, straggler threads, transient NIC-degradation windows, and
scheduled thread crashes; a :class:`FaultInjector` executes the plan
deterministically (seeded ``numpy`` Generator, virtual-clock time only);
:class:`RetryPolicy` prices lost messages (timeout + exponential backoff
+ retransmit, ``FaultError`` on exhaustion); and
:class:`RoundCheckpointer` gives the iterative solvers crash-and-recover
round replay.  Silent faults — owner-block bit flips and in-flight
payload corruption (``corruption``/``payload_corruption`` plan fields) —
are injected here too; their detection and repair live in
:mod:`repro.integrity`.  See ``docs/fault-model.md`` for the full
taxonomy and the determinism guarantees.
"""

from ..errors import FaultError, NodeLoss, ThreadCrash, UnrecoverableLossError
from .checkpoint import RoundCheckpointer
from .injector import FaultInjector
from .plan import CrashEvent, FaultPlan, NicDegradation, NodeLossEvent, RetryPolicy

__all__ = [
    "CrashEvent",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "NicDegradation",
    "NodeLoss",
    "NodeLossEvent",
    "RetryPolicy",
    "RoundCheckpointer",
    "ThreadCrash",
    "UnrecoverableLossError",
]
