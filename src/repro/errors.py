"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so downstream users can catch a single base class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "UsageError",
    "DistributionError",
    "CollectiveError",
    "GraphError",
    "ConvergenceError",
    "VerificationError",
    "FaultError",
    "ThreadCrash",
    "IntegrityError",
    "NodeLoss",
    "UnrecoverableLossError",
    "JobCancelled",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid machine, optimization, or solver configuration."""


class UsageError(ConfigError):
    """A malformed flag, environment variable, or service request
    parameter — the *caller's* input is wrong, as opposed to an
    internally inconsistent configuration.  The message names the
    offending flag/variable/field so the fix is obvious."""


class DistributionError(ReproError, ValueError):
    """An invalid data distribution request (bad block size, out-of-range
    thread id, mismatched partition offsets, ...)."""


class CollectiveError(ReproError, RuntimeError):
    """A collective operation was invoked with inconsistent arguments
    across simulated threads (mismatched participant sets, wrong shapes)."""


class GraphError(ReproError, ValueError):
    """An invalid graph input (negative vertex ids, vertex ids out of
    range, malformed edge list, impossible generator parameters)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exceeded its iteration safety bound.

    The grafting/pointer-jumping loops of CC and the Boruvka loop of MST
    are guaranteed to converge in ``O(log n)`` rounds; hitting the safety
    bound indicates a semantic bug and is reported loudly rather than
    looping forever.
    """


class VerificationError(ReproError, AssertionError):
    """A result failed self-verification (invalid forest, wrong component
    count, ...)."""


class FaultError(ReproError, RuntimeError):
    """An injected fault could not be absorbed by the runtime's recovery
    machinery: a simulated message exhausted its :class:`~repro.faults.
    RetryPolicy` retry budget, or a thread crash fired where no
    checkpoint/replay handler was installed."""


class ThreadCrash(FaultError):
    """Control-flow signal for a scheduled thread crash.

    Raised by the runtime when a :class:`~repro.faults.CrashEvent` fires
    at a synchronization point.  Solvers with round checkpointing catch
    it, restore the last checkpoint, and replay the lost round; solvers
    without recovery let it propagate as a :class:`FaultError`.
    """

    def __init__(self, thread: int, at_time: float, recovery: float) -> None:
        super().__init__(
            f"thread {thread} crashed at t={at_time * 1e3:.3f} ms "
            f"(recovery {recovery * 1e3:.3f} ms)"
        )
        self.thread = thread
        self.at_time = at_time
        self.recovery = recovery


class NodeLoss(FaultError):
    """Control-flow signal for a *permanent* node failure.

    Raised by the runtime when a :class:`~repro.faults.NodeLossEvent`
    fires at a synchronization point and a
    :class:`~repro.resilience.ResilientSession` is active: the session
    has already marked the node dead (its owner blocks are gone), and
    the solver's recovery handler must now call
    :meth:`~repro.resilience.ResilientSession.recover_loss` to
    reconstruct the lost blocks, remap ownership onto the new
    membership epoch, and replay from the round checkpoint.  Unlike
    :class:`ThreadCrash` the failed hardware never comes back.
    """

    def __init__(self, node: int, at_time: float) -> None:
        super().__init__(
            f"node {node} permanently lost at t={at_time * 1e3:.3f} ms"
        )
        self.node = node
        self.at_time = at_time


class UnrecoverableLossError(FaultError):
    """A permanent node loss fired with no recovery path available.

    Raised instead of :class:`NodeLoss` when no
    :class:`~repro.resilience.ResilientSession` protects the run (or
    when the membership cannot shrink further — a single-node machine
    has no survivors).  The run fails loudly rather than hanging on a
    barrier that a dead node will never reach or serving a forest
    computed from vanished owner blocks.
    """

    def __init__(self, node: int, at_time: float, reason: str) -> None:
        super().__init__(
            f"node {node} permanently lost at t={at_time * 1e3:.3f} ms "
            f"and the run cannot recover: {reason}"
        )
        self.node = node
        self.at_time = at_time
        self.reason = reason


class JobCancelled(ReproError, RuntimeError):
    """Control-flow signal for cooperative job cancellation.

    Raised at runtime synchronization points (via the service's sync
    watcher) when the active job's deadline expires or its cancel token
    trips.  Deliberately *not* a :class:`FaultError`: the solvers'
    checkpoint/replay handlers catch ``(ThreadCrash, IntegrityError)``
    only, so a cancellation always unwinds out of the solve instead of
    being absorbed by the repair machinery.
    """

    def __init__(self, job_id: str, reason: str) -> None:
        super().__init__(f"job {job_id} cancelled: {reason}")
        self.job_id = job_id
        self.reason = reason


class IntegrityError(FaultError):
    """Control-flow signal for detected silent data corruption.

    Raised by the :mod:`repro.integrity` monitor when a checksum or an
    algorithmic invariant catches a silently corrupted shared-array
    block or collective payload.  Solvers with round checkpointing catch
    it, restore the last clean checkpoint, and replay the damaged round;
    solvers without repair let it propagate as a :class:`FaultError`.
    """

    def __init__(self, message: str, detected: int = 1) -> None:
        super().__init__(message)
        self.detected = int(detected)
