"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so downstream users can catch a single base class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "DistributionError",
    "CollectiveError",
    "GraphError",
    "ConvergenceError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid machine, optimization, or solver configuration."""


class DistributionError(ReproError, ValueError):
    """An invalid data distribution request (bad block size, out-of-range
    thread id, mismatched partition offsets, ...)."""


class CollectiveError(ReproError, RuntimeError):
    """A collective operation was invoked with inconsistent arguments
    across simulated threads (mismatched participant sets, wrong shapes)."""


class GraphError(ReproError, ValueError):
    """An invalid graph input (negative vertex ids, vertex ids out of
    range, malformed edge list, impossible generator parameters)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exceeded its iteration safety bound.

    The grafting/pointer-jumping loops of CC and the Boruvka loop of MST
    are guaranteed to converge in ``O(log n)`` rounds; hitting the safety
    bound indicates a semantic bug and is reported loudly rather than
    looping forever.
    """


class VerificationError(ReproError, AssertionError):
    """A result failed self-verification (invalid forest, wrong component
    count, ...)."""
