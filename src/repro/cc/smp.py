"""CC-SMP: the shared-memory baseline (paper's Fig. 1, left column).

The Bader-Cong SMP connected-components code: identical algorithm to the
UPC translation, run on one SMP node where every irregular access is a
plain (cache-modeled) memory access.  The paper uses its 16-thread run
as the bar every distributed configuration must clear (the solid
horizontal line in Figs. 7-8).
"""

from __future__ import annotations

from ..core.results import CCResult
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, smp_node
from .fine_grained import solve_cc_fine_grained

__all__ = ["solve_cc_smp"]


def solve_cc_smp(
    graph: EdgeList, machine: MachineConfig | None = None, faults=None
) -> CCResult:
    """Run CC-SMP on a single-node machine (default: 16 threads).

    A fault plan on an SMP run only models stragglers — there is no
    network to lose messages on.
    """
    machine = machine if machine is not None else smp_node(16)
    if machine.nodes != 1:
        raise ConfigError(
            f"CC-SMP is a single-node baseline; got a {machine.nodes}-node machine"
        )
    return solve_cc_fine_grained(graph, machine, style="smp", faults=faults)
