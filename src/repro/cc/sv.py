"""Shiloach-Vishkin connected components, rewritten with collectives.

"We also rewrite the classic Shiloach-Vishkin connected components
algorithm (SV).  Prior studies show that SV is slower than CC on SMPs.
Yet the synchronous nature of SV makes it easy for rewriting.  The major
difference between SV and CC is in the short-cutting step.  Only one
level of pointer-jumping is applied in SV ... SV allows grafting rooted
stars to other components when the normal grafting condition does not
occur."

Per iteration: conditional graft (same rule as CC), star detection, the
stagnant-star hook, and a *single* pointer-jump round.  SV issues ~12
collective calls per iteration vs CC's ~5 plus jump rounds — the paper's
Fig. 3 observation "SV is slower than CC due to more collective calls in
one iteration" falls straight out.

Determinism notes (legal arbitrary-CRCW adjudications, documented in
DESIGN.md):

* conditional grafts resolve by minimum (labels only shrink);
* the stagnant-star hook resolves by *minimum proposal, plain store*
  (a star root's label may legitimately rise); hooks are restricted to
  raising targets (``value > target``) — the shrinking direction is
  already covered by the conditional graft — which makes hook chains
  acyclic, and hooks never target vertex 0 so the ``offload`` invariant
  ``D[0] == 0`` is preserved (component 0 is absorbed by conditional
  grafts instead, since its label is globally minimal).
"""

from __future__ import annotations

import time

import numpy as np

from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..collectives.setd import setd
from ..core.optimizations import OptimizationFlags
from ..core.results import CCResult, SolveInfo
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from .common import check_converged, graft_proposals

__all__ = ["solve_cc_sv"]


def solve_cc_sv(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
) -> CCResult:
    """Collective-based Shiloach-Vishkin connected components."""
    machine = machine if machine is not None else hps_cluster()
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine)
    n = graph.n
    if n == 0:
        info = SolveInfo(machine, "cc-sv", 0.0, time.perf_counter() - wall_start, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)

    ep = distribute_edges(graph, rt.s)
    u_part, v_part = ep.u, ep.v
    d = rt.shared_array(np.arange(n, dtype=np.int64))
    star = rt.shared_array(np.ones(n, dtype=np.int64))
    ch = rt.shared_array(np.zeros(n, dtype=np.int64))
    stag = rt.shared_array(np.zeros(n, dtype=np.int64))
    sizes_local = d.local_sizes().astype(np.float64)
    vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
    np.cumsum(d.local_sizes(), out=vert_offsets[1:])
    ctx = CollectiveContext()
    hot = 0 if opts.offload else None

    def label_partition() -> PartitionedArray:
        return PartitionedArray(rt.owner_block_read(d, counts=sizes_local), vert_offsets)

    iteration = 0
    while True:
        iteration += 1
        check_converged(iteration, n, "cc-sv")
        rt.counters.add(iterations=1)

        # 1. Conditional grafting (identical rule to CC).
        du = getd(rt, d, u_part, opts, ctx, "edges.u", tprime, sort_method, hot_value=hot)
        dv = getd(rt, d, v_part, opts, ctx, "edges.v", tprime, sort_method, hot_value=hot)
        if opts.compact:
            keep = du != dv
            rt.local_ops(u_part.sizes().astype(np.float64))
            if not keep.all():
                u_part = u_part.filter(keep)
                v_part = v_part.filter(keep)
                du, dv = du[keep], dv[keep]
                ctx.invalidate()
        ddu = getd(rt, d, u_part.with_data(du), opts, None, None, tprime, sort_method, hot_value=hot)
        ddv = getd(rt, d, v_part.with_data(dv), opts, None, None, tprime, sort_method, hot_value=hot)
        rt.local_ops(6.0 * u_part.sizes().astype(np.float64))
        before = d.data.copy()
        step = graft_proposals(du, dv, ddu, ddv)
        graft_targets = u_part.filter(step.mask).with_data(step.targets)
        changed_graft = setd(
            rt, d, graft_targets, step.values, opts, None, None, tprime, sort_method,
            drop_hot=True, hot_index=0,
        )

        # 2. Change flags, owner-local.
        rt.owner_block_write(ch, (d.data != before).astype(np.int64), counts=sizes_local)

        # 3. Star detection (classic three-step check).
        idxp = label_partition()
        grand = getd(rt, d, idxp, opts, None, None, tprime, sort_method, hot_value=hot)
        rt.owner_block_write(star, 1, counts=sizes_local)
        non_star = grand != d.data
        # star[i] = false, owner-local
        rt.owner_masked_write(star, non_star, 0, charge="ops", counts=sizes_local)
        # star[D[D[i]]] = false for the same i — remote scatter.
        gp = PartitionedArray(grand, vert_offsets).filter(non_star)
        setd(rt, star, gp, np.zeros(gp.total, dtype=np.int64), opts, None, None, tprime, sort_method)
        # star[i] = star[D[i]] — remote gather of the parent's flag.
        star_at_parent = getd(rt, star, idxp, opts, None, None, tprime, sort_method)
        rt.owner_block_write(star, star_at_parent, counts=sizes_local)

        # 4. Stagnant stars: in a star whose root's label did not change.
        ch_at_root = getd(rt, ch, idxp, opts, None, None, tprime, sort_method)
        rt.owner_block_write(stag, star.data & (ch_at_root == 0), charge="ops", counts=sizes_local)

        # 5. Hook stagnant stars onto (larger-labeled) neighbours.
        #
        # The hook must be computed from *post-graft* roots: the same
        # iteration's conditional graft may already have moved the other
        # endpoint's root (e.g. D[9] <- 5), and hooking against the stale
        # pre-graft label would re-raise it (D[5] <- 9), creating a
        # 2-cycle the pointer jumping can never resolve.  Four more
        # collectives fetch fresh labels and their parents — part of why
        # "SV is slower than CC due to more collective calls".
        fdu = getd(rt, d, u_part, opts, None, None, tprime, sort_method, hot_value=hot)
        fdv = getd(rt, d, v_part, opts, None, None, tprime, sort_method, hot_value=hot)
        gdu = getd(rt, d, u_part.with_data(fdu), opts, None, None, tprime, sort_method, hot_value=hot)
        gdv = getd(rt, d, v_part.with_data(fdv), opts, None, None, tprime, sort_method, hot_value=hot)
        stag_u = getd(rt, stag, u_part, opts, ctx, "edges.u", tprime, sort_method)
        stag_v = getd(rt, stag, v_part, opts, ctx, "edges.v", tprime, sort_method)
        rt.local_ops(4.0 * u_part.sizes().astype(np.float64))
        hook_u = (stag_u == 1) & (gdv > gdu) & (gdu != 0)
        hook_v = (stag_v == 1) & (gdu > gdv) & (gdv != 0)
        t_u = u_part.filter(hook_u).with_data(gdu[hook_u])
        t_v = v_part.filter(hook_v).with_data(gdv[hook_v])
        hook_targets = PartitionedArray.concat_pairwise(t_u, t_v)
        hook_values = PartitionedArray.concat_pairwise(
            u_part.filter(hook_u).with_data(gdv[hook_u]),
            v_part.filter(hook_v).with_data(gdu[hook_v]),
        )
        changed_hook = setd(
            rt, d, hook_targets, hook_values.data, opts, None, None, tprime, sort_method,
            combine="store_min",
        )

        # 6. One pointer-jump round.
        idxp2 = label_partition()
        grand2 = getd(rt, d, idxp2, opts, None, None, tprime, sort_method, hot_value=None)
        moved = grand2 != d.data
        rt.owner_block_write(d, grand2, counts=sizes_local)
        changed_jump = int(np.count_nonzero(moved))

        total_changed = changed_graft + changed_hook + changed_jump
        if not rt.allreduce_flag(np.full(rt.s, total_changed > 0)):
            break

    labels = d.data.copy()
    info = SolveInfo(
        machine, "cc-sv", rt.elapsed, time.perf_counter() - wall_start, iteration, rt.trace
    )
    return CCResult(labels, info)
