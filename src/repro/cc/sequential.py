"""Best sequential connected components.

The paper's sequential CC baseline is a single-thread union-find /
traversal implementation; speedups "up to 10.1 ... compared with the
best sequential implementation" are measured against it.

Execution engine: ``scipy.sparse.csgraph.connected_components`` computes
the labels (C speed, needed because the benchmarks call this baseline on
million-edge inputs); a pure-Python union-find with identical semantics
lives in :mod:`repro.cc.reference` and pins correctness in tests.

Cost accounting: the modeled time charges the union-find access pattern
— for every edge, two finds whose path-halving steps are irregular reads
into the parent array (working set ``n``), plus the constant-time union
— with the same cache-modeled memory costs every other implementation
uses.  The average find path length is charged as
:data:`FIND_PATH_ACCESSES` (path halving keeps amortized path length
O(alpha); 2.5 reflects the near-flat trees seen on random graphs).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.sparse import csgraph

from ..core.results import CCResult, SolveInfo
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, sequential_machine
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category

__all__ = ["solve_cc_sequential", "FIND_PATH_ACCESSES"]

#: Modeled irregular parent-array reads per find (path halving).
FIND_PATH_ACCESSES = 2.5


def solve_cc_sequential(graph: EdgeList, machine: MachineConfig | None = None) -> CCResult:
    """Sequential union-find CC with modeled cost, scipy-executed labels."""
    machine = machine if machine is not None else sequential_machine()
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine)
    n, m = graph.n, graph.m

    if n == 0:
        info = SolveInfo(machine, "cc-seq", 0.0, time.perf_counter() - wall_start, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)

    # --- modeled cost: init + per-edge finds/union ---
    ws_bytes = n * 8
    rt.local_stream(float(n), Category.WORK)  # parent array init
    rt.local_stream(float(2 * m), Category.WORK)  # stream the edge list
    # Two finds per edge, FIND_PATH_ACCESSES irregular reads each (plus
    # the same number of halving writes folded into the constant).
    rt.local_random_access(2.0 * m * FIND_PATH_ACCESSES, ws_bytes, Category.IRREGULAR)
    rt.local_ops(4.0 * m)
    rt.counters.add(iterations=1)

    # --- execution: scipy (verified against reference_union_find_labels) ---
    if m == 0:
        labels = np.arange(n, dtype=np.int64)
    else:
        _, comp = csgraph.connected_components(graph.to_scipy(), directed=False)
        # Convert scipy's component ids to min-vertex-label convention.
        mins = np.full(int(comp.max()) + 1, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(mins, comp, np.arange(n, dtype=np.int64))
        labels = mins[comp]

    info = SolveInfo(
        machine, "cc-seq", rt.elapsed, time.perf_counter() - wall_start, 1, rt.trace
    )
    return CCResult(labels, info)
