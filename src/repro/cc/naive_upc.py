"""CC-UPC: the naive PGAS translation (paper's Fig. 1, right column).

A thin front over the fine-grained engine with ``style='upc'`` on a
distributed machine.  This is the configuration Fig. 2 shows to be three
orders of magnitude slower (per processor) than CC-SMP: every irregular
``D[...]`` dereference that lands on another node becomes a blocking
small message, and the messages of a node's 16 threads serialize through
its NIC.
"""

from __future__ import annotations

from ..core.results import CCResult
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from .fine_grained import solve_cc_fine_grained

__all__ = ["solve_cc_naive_upc"]


def solve_cc_naive_upc(
    graph: EdgeList, machine: MachineConfig | None = None, faults=None
) -> CCResult:
    """Run the literal UPC translation of graft-and-shortcut CC."""
    machine = machine if machine is not None else hps_cluster()
    if machine.nodes < 1:
        raise ConfigError("naive UPC CC needs a machine")
    return solve_cc_fine_grained(graph, machine, style="upc", faults=faults)
