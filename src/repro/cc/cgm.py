"""CGM (communication-efficient) connected components — the baseline the
paper's thesis argues against.

Dehne et al.'s coarse-grained scheme minimizes communication *rounds*:

1. every node reduces its local edge slice to a spanning forest
   (<= n-1 edges) with a sequential union-find pass;
2. ``log2 p`` merge rounds: active nodes pair up, one ships its forest
   to the other in a single coalesced message, and the receiver runs a
   sequential union-find over the union (<= 2(n-1) edges), keeping a new
   forest — half the nodes go idle each round;
3. the last node computes labels and broadcasts them.

Exactly ``O(log p)`` communication rounds, independent of ``m`` — and
exactly the structure the paper criticizes: every merge round puts a
*sequential* pass over ``O(n)`` irregular data on the critical path
while the other nodes idle, so on deep memory hierarchies the total time
is bounded below by ``log p`` sequential union-finds no matter how many
processors exist.  ``benchmarks/bench_thesis_cgm_vs_pgas.py`` regenerates
the comparison that motivates the paper's whole approach.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..core.results import CCResult, SolveInfo
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import even_offsets
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .sequential import FIND_PATH_ACCESSES

__all__ = ["solve_cc_cgm"]

#: An edge travels as an (u, v) pair — two words.
EDGE_BYTES = 16


def _spanning_forest(n: int, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Spanning forest (as endpoint arrays) of the given edge set."""
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size == 0:
        return u, v
    mat = sparse.coo_matrix((np.ones(u.size), (u, v)), shape=(n, n)).tocsr()
    tree = csgraph.minimum_spanning_tree(mat + mat.T).tocoo()
    return tree.row.astype(np.int64), tree.col.astype(np.int64)


def _charge_union_find(rt: PGASRuntime, thread: int, m_edges: int, n: int) -> None:
    """Sequential union-find over ``m_edges`` edges charged to ONE thread
    (the serial merge step on the critical path)."""
    ws = n * 8.0
    per_access = float(rt.cost.miss_rate(ws)) * rt.machine.memory.latency + (
        8.0 / rt.machine.memory.bandwidth
    )
    accesses = 2.0 * m_edges * FIND_PATH_ACCESSES
    rt.charge_thread(Category.IRREGULAR, thread, accesses * per_access)
    rt.charge_thread(Category.WORK, thread, 4.0 * m_edges * rt.machine.cpu.op_time)
    rt.counters.add(local_random_accesses=int(accesses))


def solve_cc_cgm(graph: EdgeList, machine: MachineConfig | None = None) -> CCResult:
    """Connected components with the round-minimizing CGM scheme."""
    machine = machine if machine is not None else hps_cluster()
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    n, m = graph.n, graph.m
    if n == 0:
        info = SolveInfo(machine, "cc-cgm", 0.0, time.perf_counter() - wall, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)

    p = machine.nodes
    first_thread_of = [node * machine.threads_per_node for node in range(p)]

    # -- round 0: each node reduces its slice to a forest (in parallel) ------
    offsets = even_offsets(m, p)
    forests: list[tuple[np.ndarray, np.ndarray]] = []
    for node in range(p):
        lo, hi = offsets[node], offsets[node + 1]
        fu, fv = _spanning_forest(n, graph.u[lo:hi], graph.v[lo:hi])
        forests.append((fu, fv))
        _charge_union_find(rt, first_thread_of[node], int(hi - lo), n)
    rt.counters.add(iterations=1)
    rt.barrier()

    # -- log2(p) merge rounds -------------------------------------------------
    active = list(range(p))
    rounds = 0
    while len(active) > 1:
        rounds += 1
        rt.counters.add(iterations=1)
        nxt = []
        for i in range(0, len(active) - 1, 2):
            recv, send = active[i], active[i + 1]
            su, sv = forests[send]
            ru, rv = forests[recv]
            # One coalesced message: the sender's whole forest.
            msg_bytes = int(su.size) * EDGE_BYTES
            rt.charge_thread(
                Category.COMM,
                first_thread_of[recv],
                float(rt.cost.remote_message_time(msg_bytes)),
            )
            rt.counters.add(remote_messages=1, remote_bytes=msg_bytes)
            mu = np.concatenate([ru, su])
            mv = np.concatenate([rv, sv])
            forests[recv] = _spanning_forest(n, mu, mv)
            _charge_union_find(rt, first_thread_of[recv], int(mu.size), n)
            nxt.append(recv)
        if len(active) % 2 == 1:
            nxt.append(active[-1])
        active = nxt
        rt.barrier()

    # -- final labels on the last node, then broadcast -------------------------
    root = active[0]
    fu, fv = forests[root]
    _charge_union_find(rt, first_thread_of[root], int(fu.size) + n, n)
    if fu.size:
        mat = sparse.coo_matrix((np.ones(fu.size), (fu, fv)), shape=(n, n)).tocsr()
        _, comp = csgraph.connected_components(mat + mat.T, directed=False)
        mins = np.full(int(comp.max()) + 1, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(mins, comp, np.arange(n, dtype=np.int64))
        labels = mins[comp]
    else:
        labels = np.arange(n, dtype=np.int64)
    # Broadcast: one label-array message per peer node.
    bcast = float(rt.cost.remote_message_time(n * 8))
    rt.charge_thread(Category.COMM, first_thread_of[root], bcast * max(p - 1, 0))
    rt.counters.add(remote_messages=max(p - 1, 0), remote_bytes=(p - 1) * n * 8)
    rt.barrier()

    info = SolveInfo(
        machine, "cc-cgm", rt.elapsed, time.perf_counter() - wall, rounds + 1, rt.trace
    )
    return CCResult(labels, info)
