"""Fine-grained CC engine: the naive UPC translation and the SMP baseline.

Both run the *same* graft-and-shortcut algorithm (Fig. 1); they differ
only in what an irregular access costs:

* ``style='upc'`` — the literal UPC translation on a cluster: every
  shared-array dereference with remote affinity is a blocking small
  message (node-serialized), and local ones pay the UPC runtime's
  shared-pointer overhead.  This is the paper's CC-UPC of Fig. 2 —
  "3 orders of magnitude slower than CC-SMP" normalized per processor.
* ``style='smp'`` — the same source compiled for one SMP node (CC-SMP):
  irregular accesses are plain cache-modeled memory accesses.

The shortcut loop is asynchronous in both (the per-vertex ``while`` of
Fig. 1): no barriers are charged between rounds, and from the second
round on only vertices that moved keep walking.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.results import CCResult, SolveInfo
from ..errors import ConfigError
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .common import check_converged, graft_proposals

__all__ = ["solve_cc_fine_grained"]

_STYLES = ("upc", "smp")


class _Access:
    """Access-cost adapter: UPC fine-grained vs SMP cache-modeled."""

    def __init__(self, rt: PGASRuntime, d, style: str) -> None:
        self.rt = rt
        self.d = d
        self.style = style
        self.ws_bytes = d.size * d.nbytes_per_elem / rt.machine.nodes

    def _charge_smp(self, indices: PartitionedArray) -> None:
        """Plain cache-modeled irregular access, cold-miss bounded: the
        SMP code's repeated reads of a few component roots hit cache on
        real hardware, and the model must give it the same courtesy it
        gives the collectives."""
        sizes = indices.sizes().astype(np.float64)
        distinct = indices.segment_distinct().astype(np.float64)
        ws = self.rt.cost.distinct_working_set(distinct, self.ws_bytes)
        self.rt.charge(
            Category.IRREGULAR, self.rt.cost.gather_time(sizes, distinct, ws)
        )
        self.rt.counters.add(local_random_accesses=int(sizes.sum()))

    def read(self, indices: PartitionedArray) -> np.ndarray:
        if self.style == "upc":
            return self.rt.fine_grained_read(self.d, indices)
        self._charge_smp(indices)
        return self.d.gather(indices.data)

    def write_min(self, indices: PartitionedArray, values: np.ndarray) -> int:
        if self.style == "upc":
            return self.rt.fine_grained_write(self.d, indices, values, combine="min")
        self._charge_smp(indices)
        return self.d.scatter_min(indices.data, values)


def _vertex_partition_offsets(d) -> np.ndarray:
    sizes = d.local_sizes()
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def solve_cc_fine_grained(
    graph: EdgeList, machine: MachineConfig, style: str, faults=None
) -> CCResult:
    """Run graft-and-shortcut CC with per-element access costs.

    Returns labels identical to every other implementation in this
    package (same snapshot semantics, same min adjudication).

    ``faults`` accepts a :class:`~repro.faults.FaultPlan`; loss and
    stragglers apply to every fine-grained access.  Crash events never
    fire here — the asynchronous loops have no synchronization points —
    which is itself part of the model (see docs/fault-model.md).
    """
    if style not in _STYLES:
        raise ConfigError(f"style must be one of {_STYLES}, got {style!r}")
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine, faults=faults)
    n = graph.n
    ep = distribute_edges(graph, rt.s)
    d = rt.shared_array(np.arange(n, dtype=np.int64)) if n else None
    if n == 0:
        info = SolveInfo(machine, f"cc-{style}", 0.0, time.perf_counter() - wall_start, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)
    access = _Access(rt, d, style)
    vert_offsets = _vertex_partition_offsets(d)

    iteration = 0
    while True:
        iteration += 1
        check_converged(iteration, n, f"cc-{style} grafting")
        rt.counters.add(iterations=1)

        # Grafting from the iteration snapshot.
        du = access.read(ep.u)
        dv = access.read(ep.v)
        ddu = access.read(ep.u.with_data(du))
        ddv = access.read(ep.v.with_data(dv))
        rt.local_ops(6.0 * ep.sizes().astype(np.float64))
        step = graft_proposals(du, dv, ddu, ddv)
        targets = ep.u.filter(step.mask).with_data(step.targets)
        changed = access.write_min(targets, step.values)

        # Asynchronous shortcut: every vertex walks until its parent is a
        # root.  Round 1 touches all vertices; later rounds only movers.
        active = np.ones(n, dtype=bool)
        guard = 0
        while True:
            guard += 1
            check_converged(guard, n, f"cc-{style} shortcut")
            counts = PartitionedArray(active.astype(np.int64), vert_offsets).segment_sums()
            # Read own label (contiguous) and the grandparent (irregular).
            grand_idx = PartitionedArray(rt.owner_block_read(d, counts=counts), vert_offsets)
            # Only active vertices issue the irregular grandparent read;
            # charge as if the inactive ones were skipped.
            sub = grand_idx.filter(active)
            if style == "upc":
                # Approximate the fine-grained charge on the active subset.
                grand_sub = rt.fine_grained_read(d, sub)
                grand = d.data.copy()
                grand[active] = grand_sub
            else:
                access._charge_smp(sub)
                grand = d.gather(d.data)
            moved = grand != d.data
            if not moved.any():
                break
            rt.owner_masked_write(
                d,
                moved,
                grand[moved],
                counts=PartitionedArray(moved.astype(np.int64), vert_offsets).segment_sums(),
            )
            active = moved
        if changed == 0:
            break

    labels = d.data.copy()
    info = SolveInfo(
        machine,
        f"cc-{style}",
        rt.elapsed,
        time.perf_counter() - wall_start,
        iteration,
        rt.trace,
    )
    return CCResult(labels, info)
