"""Connected components: every implementation the paper evaluates.

* :func:`solve_cc_naive_upc` — literal PGAS translation (Fig. 2's CC-UPC);
* :func:`solve_cc_smp` — single-node SMP baseline (CC-SMP);
* :func:`solve_cc_collective` — the GetD/SetD rewrite with all Section V
  optimizations (the paper's "Optimized");
* :func:`solve_cc_sv` — Shiloach-Vishkin rewritten with collectives;
* :func:`solve_cc_sequential` — best sequential baseline (union-find);
* :func:`solve_cc_cgm` — the round-minimizing CGM comparison point the
  paper's thesis argues against.

All produce identical component partitions (deterministic min
adjudication); they differ in the machine they target and what their
accesses cost.
"""

from .cgm import solve_cc_cgm
from .collective import pointer_jump_to_stars, solve_cc_collective
from .common import graft_proposals, is_all_stars, iteration_bound
from .fine_grained import solve_cc_fine_grained
from .naive_upc import solve_cc_naive_upc
from .reference import reference_cc_labels, reference_union_find_labels
from .sequential import solve_cc_sequential
from .smp import solve_cc_smp
from .sv import solve_cc_sv

__all__ = [
    "graft_proposals",
    "solve_cc_cgm",
    "is_all_stars",
    "iteration_bound",
    "pointer_jump_to_stars",
    "reference_cc_labels",
    "reference_union_find_labels",
    "solve_cc_collective",
    "solve_cc_fine_grained",
    "solve_cc_naive_upc",
    "solve_cc_sequential",
    "solve_cc_smp",
    "solve_cc_sv",
]
