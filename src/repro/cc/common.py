"""Shared semantics for the connected-components implementations.

Every CC implementation in this package — the pure-Python reference, the
SMP baseline, the naive UPC translation, and the collective rewrite —
executes the *same* grafting rule from the same per-iteration snapshot,
with concurrent writes adjudicated by minimum.  That makes the label
evolution bit-identical across implementations and thread counts, which
is what lets the tests pin one against another.

Grafting rule (Bader-Cong CC, an SV-derived hook):

    for each edge (u, v):
        if D[u] < D[v] and D[v] == D[D[v]]:   # v's label is a root
            D[D[v]] <- D[u]
        symmetric for D[v] < D[u]

Shortcut rule: ``D[i] <- D[D[i]]`` repeated until every tree is a rooted
star (the full loop in CC; a single application in SV).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConvergenceError

__all__ = ["graft_proposals", "iteration_bound", "is_all_stars", "GraftStep"]


def iteration_bound(n: int) -> int:
    """Safety bound on grafting iterations: the algorithms converge in
    ``O(log n)``; we allow a generous multiple before declaring a bug."""
    return 4 * max(1, math.ceil(math.log2(max(n, 2)))) + 8


class GraftStep:
    """The write set of one grafting step, computed from a snapshot.

    ``targets[i]`` receives ``values[i]`` (min-adjudicated).  ``live``
    marks edges whose endpoints are in different components (the
    ``compact`` optimization keeps exactly these).
    """

    __slots__ = ("targets", "values", "live", "mask")

    def __init__(self, targets: np.ndarray, values: np.ndarray, live: np.ndarray, mask: np.ndarray):
        self.targets = targets
        self.values = values
        self.live = live
        self.mask = mask


def graft_proposals(
    du: np.ndarray, dv: np.ndarray, ddu: np.ndarray, ddv: np.ndarray
) -> GraftStep:
    """Compute the grafting write set from snapshot label reads.

    Parameters are the snapshot values ``D[u]``, ``D[v]``, ``D[D[u]]``,
    ``D[D[v]]`` for every (still live) edge.  The two directions are
    mutually exclusive (``D[u] < D[v]`` xor ``D[v] < D[u]`` on live
    edges), so the result is a single target/value pair per proposing
    edge.
    """
    cond_uv = (du < dv) & (ddv == dv)  # graft v's root onto u's label
    cond_vu = (dv < du) & (ddu == du)  # graft u's root onto v's label
    mask = cond_uv | cond_vu
    targets = np.where(cond_uv, dv, du)[mask]
    values = np.where(cond_uv, du, dv)[mask]
    live = du != dv
    return GraftStep(targets, values, live, mask)


def is_all_stars(d: np.ndarray) -> bool:
    """True when every tree in the parent forest is a rooted star."""
    return bool(np.array_equal(d[d], d))


def check_converged(iteration: int, n: int, what: str) -> None:
    """Raise if the iteration safety bound is exceeded."""
    if iteration > iteration_bound(n):
        raise ConvergenceError(
            f"{what} exceeded the {iteration_bound(n)}-iteration safety bound for n={n};"
            " this indicates a semantic bug, not a slow input"
        )
