"""Pure-Python per-element reference implementations.

These mirror the paper's Fig. 1 pseudo-code literally — explicit loops
over edges and vertices — and exist solely to pin the semantics of the
vectorized simulations on small inputs.  ``O(n + m)`` Python-level work
per iteration: keep inputs small (tests use n <= a few hundred).

Determinism: concurrent writes within one grafting step are resolved by
minimum, matching the vectorized implementations exactly, by buffering
proposals and applying the smallest per target.
"""

from __future__ import annotations

import numpy as np

from ..graph.edgelist import EdgeList
from .common import check_converged

__all__ = ["reference_cc_labels", "reference_union_find_labels"]


def reference_cc_labels(graph: EdgeList) -> np.ndarray:
    """Literal graft-and-shortcut CC (Fig. 1 left), min-adjudicated."""
    n = graph.n
    d = list(range(n))
    iteration = 0
    while True:
        iteration += 1
        check_converged(iteration, n, "reference CC grafting")
        # Grafting from a snapshot.
        snapshot = d[:]
        proposals: dict[int, int] = {}
        for u, v in zip(graph.u.tolist(), graph.v.tolist()):
            du, dv = snapshot[u], snapshot[v]
            if du < dv and snapshot[dv] == dv:
                if dv not in proposals or du < proposals[dv]:
                    proposals[dv] = du
            elif dv < du and snapshot[du] == du:
                if du not in proposals or dv < proposals[du]:
                    proposals[du] = dv
        changed = False
        for target, value in proposals.items():
            if value < d[target]:
                d[target] = value
                changed = True
        # Shortcut to rooted stars.
        guard = 0
        while True:
            guard += 1
            check_converged(guard, n, "reference CC shortcut")
            moved = False
            for i in range(n):
                if d[d[i]] != d[i]:
                    d[i] = d[d[i]]
                    moved = True
            if not moved:
                break
        if not changed:
            return np.asarray(d, dtype=np.int64)


def reference_union_find_labels(graph: EdgeList) -> np.ndarray:
    """Sequential union-find with path halving — the textbook sequential
    CC the paper's speedup baselines are measured against."""
    n = graph.n
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    for u, v in zip(graph.u.tolist(), graph.v.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            # Union by smaller label so results match the min convention.
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    return np.asarray([find(i) for i in range(n)], dtype=np.int64)
