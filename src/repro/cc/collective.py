"""CC rewritten with the GetD/SetD collectives (paper Sections IV-V).

The grafting reads and writes become coalesced collectives, and the
asynchronous shortcut is replaced by *synchronous* lock-step pointer
jumping — "We insert artificial synchronizations into pointer-jumping ...
the modification makes communication coalescing possible."  After the
rewrite, all remote accesses occur inside ``O(log^2 n)`` collective
calls, each incurring at most one message per thread pair.

All Section V optimizations are honored via :class:`OptimizationFlags`:
``compact`` filters settled edges at the top of each iteration (before
the expensive root-check collectives), ``offload`` short-circuits
requests for the constant ``D[0]``, ``circular``/``localcpy``/``ids``/
``rdma`` act inside the collectives, and ``tprime`` adds the in-node
virtual-thread recursion level of Algorithm 1.
"""

from __future__ import annotations

import time

import numpy as np

from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..collectives.setd import setd
from ..core.optimizations import OptimizationFlags
from ..core.results import CCResult, SolveInfo
from ..errors import FaultError, IntegrityError, NodeLoss, ThreadCrash
from ..faults.checkpoint import RoundCheckpointer
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from .common import check_converged, graft_proposals

__all__ = ["solve_cc_collective", "pointer_jump_to_stars"]


def _local_label_offsets(d) -> np.ndarray:
    sizes = d.local_sizes()
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def pointer_jump_to_stars(
    rt: PGASRuntime,
    d,
    opts: OptimizationFlags,
    tprime: int,
    sort_method: str,
    vert_offsets: np.ndarray,
) -> int:
    """Synchronous pointer jumping until every tree is a rooted star.

    Each round: every thread streams its local labels, collectively
    fetches the grandparents, and overwrites its block; a flag allreduce
    decides whether another round is needed.  Returns the round count.
    """
    n = d.size
    rounds = 0
    hot = 0 if opts.offload else None
    while True:
        rounds += 1
        check_converged(rounds, n, "collective pointer jumping")
        idxp = PartitionedArray(rt.owner_block_read(d), vert_offsets)
        grand = getd(
            rt, d, idxp, opts, ctx=None, cache_key=None,
            tprime=tprime, sort_method=sort_method, hot_value=hot,
        )
        moved = grand != d.data
        moved_per_thread = PartitionedArray(moved.astype(np.int64), vert_offsets).segment_sums()
        rt.owner_block_write(d, grand)
        if not rt.allreduce_flag(moved_per_thread > 0):
            return rounds


def solve_cc_collective(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
    faults=None,
    adapter=None,
    integrity=None,
    resilience=None,
) -> CCResult:
    """Connected components via GetD/SetD collectives.

    Produces the same labels as every other implementation in this
    package (snapshot grafting, min adjudication).

    ``faults`` accepts a :class:`~repro.faults.FaultPlan`.  When the plan
    schedules crashes, each grafting round checkpoints the label array
    and the live edge partitions; an injected crash restores the last
    checkpoint and replays only the lost round.

    ``integrity`` accepts an :class:`~repro.integrity.IntegrityConfig`
    (or ``True`` for the full defense): the label array is checksummed
    and invariant-verified, collective payloads are end-to-end checked,
    and detected silent corruption is repaired by restoring the round
    checkpoint and replaying — see ``docs/fault-model.md``.

    ``adapter`` accepts a :class:`~repro.tuning.OnlineAdapter`: after
    each grafting round it digests the round's phase records and may
    revise ``opts``/``tprime`` for the next round (performance knobs
    only — labels are identical with or without it).  Profiling is
    forced on so the adapter has phase records to read.

    ``resilience`` accepts a :class:`~repro.resilience.RedundancyConfig`
    (or ``True``): the label array then keeps a charged off-node replica
    (buddy) or parity block of its round-top state, and a permanent
    :class:`~repro.faults.NodeLossEvent` triggers epoch recovery — the
    dead node's blocks are reconstructed, ownership is remapped onto the
    survivors (or a cold spare), and the lost round replays under the
    new membership.  Without it a permanent loss raises
    :class:`~repro.errors.UnrecoverableLossError`.
    """
    machine = machine if machine is not None else hps_cluster()
    wall_start = time.perf_counter()
    rt = PGASRuntime(
        machine,
        profile=adapter is not None,
        faults=faults,
        integrity=integrity,
        resilience=resilience,
    )
    if adapter is not None:
        adapter.begin(rt)
    n = graph.n
    if n == 0:
        info = SolveInfo(machine, "cc-collective", 0.0, time.perf_counter() - wall_start, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)

    ep = distribute_edges(graph, rt.s)
    u_part, v_part = ep.u, ep.v
    d = rt.shared_array(np.arange(n, dtype=np.int64), name="cc.d")
    rt.protect_array(d)
    if rt.resilience is not None:
        rt.resilience.enroll(d)
    vert_offsets = _local_label_offsets(d)
    ctx = CollectiveContext()

    # Verify-and-repair needs the checkpoint even with a crash-free plan,
    # and loss recovery replays from it under the new membership.
    ck = RoundCheckpointer(
        rt,
        enabled=True if (rt.integrity is not None or rt.resilience is not None) else None,
    )
    repairs = 0
    repair_bound = 8 * (4 + int(np.ceil(np.log2(max(n, 2)))))
    iteration = 0
    while True:
        iteration += 1
        # Recomputed per round: the adapter may have flipped `offload`.
        hot = 0 if opts.offload else None
        check_converged(iteration, n, "cc-collective grafting")
        try:
            # Round-top invariants run BEFORE the save so the checkpoint
            # only ever holds invariant-clean state to restore into.
            if rt.integrity is not None:
                rt.integrity.verify_cc_round(d)
            ck.save(arrays={d.name: d.data}, u_part=u_part, v_part=v_part)
            if rt.resilience is not None:
                # Committed (recoverable) state advances with the save,
                # shipping only the dirty deltas to the replica owners.
                rt.resilience.commit_round()
            rt.counters.add(iterations=1)

            du = getd(rt, d, u_part, opts, ctx, "edges.u", tprime, sort_method, hot_value=hot)
            dv = getd(rt, d, v_part, opts, ctx, "edges.v", tprime, sort_method, hot_value=hot)

            if opts.compact:
                keep = du != dv
                rt.local_ops(u_part.sizes().astype(np.float64))
                if not keep.all():
                    u_part = u_part.filter(keep)
                    v_part = v_part.filter(keep)
                    du, dv = du[keep], dv[keep]
                    ctx.invalidate()

            ddu = getd(
                rt, d, u_part.with_data(du), opts, None, None, tprime, sort_method, hot_value=hot
            )
            ddv = getd(
                rt, d, v_part.with_data(dv), opts, None, None, tprime, sort_method, hot_value=hot
            )
            rt.local_ops(6.0 * u_part.sizes().astype(np.float64))

            step = graft_proposals(du, dv, ddu, ddv)
            targets = u_part.filter(step.mask).with_data(step.targets)
            changed = setd(
                rt, d, targets, step.values, opts, ctx=None, cache_key=None,
                tprime=tprime, sort_method=sort_method,
                drop_hot=True, hot_index=0,
            )
            pointer_jump_to_stars(rt, d, opts, tprime, sort_method, vert_offsets)

            changed_flags = np.full(rt.s, changed > 0)
            done = not rt.allreduce_flag(changed_flags)
            if adapter is not None and not done:
                new_opts, tprime = adapter.on_round(opts, tprime)
                if new_opts.compact != opts.compact:
                    # compact changes which requests exist; the id cache
                    # must not serve buffers for the old request lists.
                    ctx.invalidate()
                opts = new_opts
        except NodeLoss as loss:
            # Permanent membership change: reconstruct the dead node's
            # blocks from redundancy, remap onto the survivors (or a
            # spare), and replay the lost round on the new runtime.
            recovered = rt.resilience.recover_loss(loss, ck, adapter=adapter)
            rt, machine, ck = recovered.rt, recovered.machine, recovered.ck
            d = recovered.arrays[d.name]
            u_part, v_part = recovered.state["u_part"], recovered.state["v_part"]
            vert_offsets = _local_label_offsets(d)
            ctx = CollectiveContext()
            iteration -= 1
            continue
        except (ThreadCrash, IntegrityError) as fault:
            state = ck.restore()
            # repro: waive[CM01] checkpoint restore; RoundCheckpointer charges the pass
            d.data[:] = state[d.name]
            u_part, v_part = state["u_part"], state["v_part"]
            if rt.integrity is not None:
                rt.integrity.resync(d)
            if isinstance(fault, IntegrityError):
                rt.counters.add(repairs=1)
                repairs += 1
                if repairs > repair_bound:
                    raise FaultError(
                        f"cc-collective gave up after {repairs} integrity repairs"
                        " (corruption rate exceeds what replay can absorb)"
                    ) from fault
            ctx.invalidate()
            iteration -= 1
            continue
        if done:
            break

    labels = d.data.copy()
    info = SolveInfo(
        machine, "cc-collective", rt.elapsed, time.perf_counter() - wall_start, iteration, rt.trace
    )
    return CCResult(labels, info)
