"""Structural checks over edge lists.

These are used by tests, by the generators' own self-checks, and by the
examples to demonstrate input hygiene.  Each check raises
:class:`~repro.errors.GraphError` with a specific message, or returns a
boolean when called through :func:`is_simple` / :func:`has_self_loops`.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .edgelist import EdgeList

__all__ = [
    "check_simple",
    "is_simple",
    "has_self_loops",
    "check_connected_counts",
    "count_components_reference",
    "component_sizes",
]


def has_self_loops(graph: EdgeList) -> bool:
    return bool(np.any(graph.u == graph.v))


def is_simple(graph: EdgeList) -> bool:
    """True when the graph has no self-loops and no duplicate undirected
    edges."""
    if has_self_loops(graph):
        return False
    keys = graph.canonical_pairs()
    return np.unique(keys).size == graph.m


def check_simple(graph: EdgeList) -> None:
    """Raise if the graph is not simple."""
    if has_self_loops(graph):
        raise GraphError("graph contains self-loops")
    keys = graph.canonical_pairs()
    if np.unique(keys).size != graph.m:
        raise GraphError("graph contains duplicate undirected edges")


def count_components_reference(graph: EdgeList) -> int:
    """Component count via scipy (the oracle used by tests)."""
    from scipy.sparse import csgraph

    if graph.n == 0:
        return 0
    ncomp, _ = csgraph.connected_components(graph.to_scipy(), directed=False)
    return int(ncomp)


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of the components given a label array (labels need not be
    contiguous; sizes are returned sorted descending)."""
    labels = np.asarray(labels)
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def check_connected_counts(labels: np.ndarray, graph: EdgeList) -> None:
    """Verify that a CC labeling is consistent with the graph:

    * endpoints of every edge share a label;
    * the number of distinct labels equals the reference component count.
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.n,):
        raise GraphError(f"labels must have shape ({graph.n},), got {labels.shape}")
    if graph.m and np.any(labels[graph.u] != labels[graph.v]):
        raise GraphError("labeling splits an edge across components")
    expected = count_components_reference(graph)
    actual = int(np.unique(labels).size) if graph.n else 0
    if actual != expected:
        raise GraphError(f"labeling has {actual} components, reference says {expected}")
