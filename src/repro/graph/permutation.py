"""Deterministic vertex permutations.

The paper notes that RMAT graphs "contain artificial locality, and random
permutation on the vertices needs to be performed", and that its
methodology requires "the permutations generated with different number of
threads be identical".  Our simulation is single-process, so any seeded
permutation trivially satisfies that requirement; this module provides
the seeded permutation plus a couple of structured ones used in tests to
construct locality-adversarial inputs.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import GraphError

__all__ = ["random_permutation", "identity_permutation", "reversal_permutation", "block_cyclic_permutation", "invert_permutation"]


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A seeded uniform permutation of ``0..n-1`` (thread-count invariant)."""
    if n < 0:
        raise GraphError(f"negative size {n}")
    entropy = [zlib.crc32(b"perm"), n & 0xFFFFFFFF, seed & 0xFFFFFFFF]
    rng = np.random.default_rng(np.random.SeedSequence(entropy))
    return rng.permutation(n).astype(np.int64)


def identity_permutation(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def reversal_permutation(n: int) -> np.ndarray:
    """Maps ``i -> n-1-i``; flips the vertex-numbering order that the
    grafting rule (hook larger label onto smaller) depends on."""
    return np.arange(n - 1, -1, -1, dtype=np.int64)


def block_cyclic_permutation(n: int, blocks: int) -> np.ndarray:
    """Deals vertices round-robin over ``blocks`` — destroys any blocked
    locality, the worst case for a blocked shared-array layout."""
    if blocks < 1:
        raise GraphError("need blocks >= 1")
    idx = np.arange(n, dtype=np.int64)
    # position i goes to slot (i % blocks) * ceil(n/blocks) + i // blocks
    per = -(-n // blocks)
    target = (idx % blocks) * per + idx // blocks
    # Compress gaps (when n is not a multiple of blocks) to a dense range.
    order = np.argsort(target, kind="stable")
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv
