"""Graph substrate: edge lists, generators, distribution, persistence.

The paper's inputs are large sparse edge lists — random graphs and hybrid
(random + R-MAT scale-free core) graphs, optionally with random integer
weights for MST.  Everything here is deterministic for a fixed seed and
independent of the simulated thread count, matching the paper's
methodology requirement.
"""

from .distribute import EdgePartition, distribute_edges
from .edgelist import EdgeList
from .generators import (
    MAX_WEIGHT,
    complete_graph,
    cycle_graph,
    disjoint_components_graph,
    empty_graph,
    grid_graph,
    hybrid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    star_graph,
    with_random_weights,
)
from .io import cached_graph, load_edgelist, save_edgelist
from .permutation import (
    block_cyclic_permutation,
    identity_permutation,
    invert_permutation,
    random_permutation,
    reversal_permutation,
)
from .rmat import DEFAULT_RMAT_PROBS, rmat_edges
from .validation import (
    check_connected_counts,
    check_simple,
    component_sizes,
    count_components_reference,
    has_self_loops,
    is_simple,
)

__all__ = [
    "DEFAULT_RMAT_PROBS",
    "EdgeList",
    "EdgePartition",
    "MAX_WEIGHT",
    "block_cyclic_permutation",
    "cached_graph",
    "check_connected_counts",
    "check_simple",
    "complete_graph",
    "component_sizes",
    "count_components_reference",
    "cycle_graph",
    "disjoint_components_graph",
    "distribute_edges",
    "empty_graph",
    "grid_graph",
    "has_self_loops",
    "hybrid_graph",
    "identity_permutation",
    "invert_permutation",
    "is_simple",
    "load_edgelist",
    "path_graph",
    "powerlaw_graph",
    "random_graph",
    "random_permutation",
    "reversal_permutation",
    "rmat_edges",
    "save_edgelist",
    "star_graph",
    "with_random_weights",
]
