"""Persistence for edge lists.

Benchmarks cache generated graphs on disk (generating the paper's larger
inputs dominates run time otherwise, mirroring the paper's remark that
"generating large scale-free graphs is very time consuming").  Format:
NumPy ``.npz`` with ``n``, ``u``, ``v`` and optionally ``w``.
"""

from __future__ import annotations

import contextlib
import logging
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import GraphError
from .edgelist import EdgeList

logger = logging.getLogger(__name__)

__all__ = ["save_edgelist", "load_edgelist", "cached_graph"]


def save_edgelist(graph: EdgeList, path: str | os.PathLike) -> None:
    """Write ``graph`` to ``path`` (.npz, compressed).

    The write is atomic with a *unique* temp name, so concurrent bench
    or service workers caching the same graph never interleave on a
    shared temp file; last rename wins with identical bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {"n": np.int64(graph.n), "u": graph.u, "v": graph.v}
    if graph.w is not None:
        arrays["w"] = graph.w
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def load_edgelist(path: str | os.PathLike) -> EdgeList:
    """Read an edge list written by :func:`save_edgelist`."""
    with np.load(path) as data:
        missing = {"n", "u", "v"} - set(data.files)
        if missing:
            raise GraphError(f"{path}: missing arrays {sorted(missing)}")
        w = data["w"] if "w" in data.files else None
        return EdgeList(int(data["n"]), data["u"], data["v"], w)


def cached_graph(path: str | os.PathLike, builder: Callable[[], EdgeList]) -> EdgeList:
    """Load ``path`` if it exists, else build, save, and return.

    A corrupt or truncated cache file (interrupted write, disk trouble)
    is not fatal: it is logged, discarded, and regenerated.
    """
    path = Path(path)
    if path.exists():
        try:
            return load_edgelist(path)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile, GraphError) as err:
            logger.warning("corrupt graph cache %s (%s); regenerating", path, err)
            path.unlink(missing_ok=True)
    graph = builder()
    save_edgelist(graph, path)
    return graph
