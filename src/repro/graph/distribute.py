"""Distribution of edge lists across simulated threads.

The paper partitions work "by dividing the edges evenly instead of the
vertices", which is what keeps hub vertices from unbalancing the hybrid
graphs.  :class:`EdgePartition` is the SPMD view of an edge list: the
``u``/``v``/``w`` arrays share one offsets vector, so thread ``i``'s
private edge slice is ``(u.segment(i), v.segment(i), w.segment(i))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DistributionError
from ..runtime.partitioned import PartitionedArray, even_offsets
from .edgelist import EdgeList

__all__ = ["EdgePartition", "distribute_edges"]


@dataclass
class EdgePartition:
    """An edge list split evenly into per-thread contiguous slices."""

    n: int
    u: PartitionedArray
    v: PartitionedArray
    w: PartitionedArray | None = None

    def __post_init__(self) -> None:
        if not np.array_equal(self.u.offsets, self.v.offsets):
            raise DistributionError("u and v partitions must share offsets")
        if self.w is not None and not np.array_equal(self.w.offsets, self.u.offsets):
            raise DistributionError("w partition must share offsets with u/v")

    @property
    def parts(self) -> int:
        return self.u.parts

    @property
    def m(self) -> int:
        return self.u.total

    @property
    def offsets(self) -> np.ndarray:
        return self.u.offsets

    @property
    def weighted(self) -> bool:
        return self.w is not None

    def sizes(self) -> np.ndarray:
        return self.u.sizes()

    def filter(self, mask: np.ndarray) -> "EdgePartition":
        """Per-thread compaction keeping edges where ``mask`` is True
        (the ``compact`` optimization's data movement)."""
        u = self.u.filter(mask)
        v = self.v.filter(mask)
        w = self.w.filter(mask) if self.w is not None else None
        return EdgePartition(self.n, u, v, w)

    def edge_ids(self) -> PartitionedArray:
        """Global edge indices, partitioned identically (used by MST to
        report which input edges are in the forest)."""
        return PartitionedArray(np.arange(self.m, dtype=np.int64), self.offsets)

    def to_edgelist(self) -> EdgeList:
        w = self.w.data if self.w is not None else None
        return EdgeList(self.n, self.u.data.copy(), self.v.data.copy(), None if w is None else w.copy())


def distribute_edges(graph: EdgeList, threads: int) -> EdgePartition:
    """Split ``graph``'s edges into ``threads`` even contiguous slices."""
    if threads < 1:
        raise DistributionError(f"need at least one thread, got {threads}")
    offsets = even_offsets(graph.m, threads)
    u = PartitionedArray(graph.u.copy(), offsets)
    v = PartitionedArray(graph.v.copy(), offsets)
    w = PartitionedArray(graph.w.copy(), offsets) if graph.w is not None else None
    return EdgePartition(graph.n, u, v, w)
