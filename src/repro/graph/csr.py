"""CSR adjacency built from edge lists.

Vertex-centric algorithms (BFS) need neighbor enumeration; this builds
the standard compressed-sparse-row structure, symmetrized by default
(undirected graphs), with a fully vectorized construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .edgelist import EdgeList

__all__ = ["CSRAdjacency"]


@dataclass
class CSRAdjacency:
    """Adjacency of an undirected graph: ``indices[indptr[v]:indptr[v+1]]``
    are ``v``'s neighbors (with multiplicity; self-loops dropped)."""

    n: int
    indptr: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_edgelist(cls, graph: EdgeList) -> "CSRAdjacency":
        keep = graph.u != graph.v
        u = np.concatenate([graph.u[keep], graph.v[keep]])
        v = np.concatenate([graph.v[keep], graph.u[keep]])
        order = np.argsort(u, kind="stable")
        indices = v[order]
        counts = np.bincount(u, minlength=graph.n)
        indptr = np.zeros(graph.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(graph.n, indptr, indices.astype(np.int64))

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        return self.indptr[vertices + 1] - self.indptr[vertices]

    def neighbors_of(self, vertices: np.ndarray) -> np.ndarray:
        """All neighbors of the given vertices, concatenated (vectorized
        multi-row CSR slice)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        if vertices.min() < 0 or vertices.max() >= self.n:
            raise GraphError("vertex id out of range")
        starts = self.indptr[vertices]
        lengths = self.degree(vertices)
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        row_starts = np.zeros(vertices.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=row_starts[1:])
        offset_within_row = np.arange(total, dtype=np.int64) - np.repeat(row_starts, lengths)
        positions = np.repeat(starts, lengths) + offset_within_row
        return self.indices[positions]

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if self.indptr.shape != (self.n + 1,) or self.indptr[0] != 0:
            raise GraphError("malformed indptr")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphError("indptr does not cover indices")
