"""Graph generators used by the paper's evaluation.

Two input families drive every experiment in the paper:

* **random graphs** — "A random graph of n vertices and m edges is
  created by randomly adding m unique edges to the vertex set"
  (:func:`random_graph`);
* **hybrid graphs** — "We first select 2*sqrt(n) vertices randomly to
  generate a scale-free graph on them.  We then randomly add edges to the
  n vertices until we have the desired number of edges."  The result has
  no locality pattern but contains O(sqrt(n))-degree hubs
  (:func:`hybrid_graph`).

Both are deterministic functions of their seed and — critically for the
paper's methodology — independent of any thread count.  MST inputs add
"edge weights randomly chosen between 0 and the maximum integer number"
(:func:`with_random_weights`).

A set of small structured generators (paths, stars, cycles, disjoint
blocks) is included for tests and examples.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from ..errors import GraphError
from .edgelist import EdgeList
from .rmat import DEFAULT_RMAT_PROBS, rmat_edges

__all__ = [
    "random_graph",
    "hybrid_graph",
    "powerlaw_graph",
    "with_random_weights",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "disjoint_components_graph",
    "empty_graph",
    "grid_graph",
    "MAX_WEIGHT",
]

#: The paper's weight range: "randomly chosen between 0 and the maximum
#: integer number" (32-bit).
MAX_WEIGHT = 2**31 - 1


def _rng(tag: str, *values: int) -> np.random.Generator:
    """Deterministic generator from a tag and integer parameters.

    Python's built-in ``hash`` of strings is randomized per process, so we
    derive entropy from crc32 instead — graphs must be bit-identical
    across runs and (per the paper's methodology) across thread counts.
    """
    entropy = [zlib.crc32(tag.encode())] + [int(v) & 0xFFFFFFFF for v in values]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def _max_simple_edges(n: int) -> int:
    return n * (n - 1) // 2


def _sample_unique_edges(
    n: int,
    m: int,
    rng: np.random.Generator,
    existing_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``m`` unique undirected non-loop edges on ``n`` vertices,
    avoiding any edge whose canonical key appears in ``existing_keys``.

    Batched rejection sampling: draws ~1.2x the deficit per round and
    deduplicates by canonical (min*n + max) key.
    """
    if n < 2 and m > 0:
        raise GraphError(f"cannot place {m} edges on {n} vertices")
    capacity = _max_simple_edges(n) - (existing_keys.size if existing_keys is not None else 0)
    if m > capacity:
        raise GraphError(f"requested {m} unique edges but only {capacity} are available (n={n})")

    keys_seen = (
        np.empty(0, dtype=np.int64) if existing_keys is None else existing_keys.astype(np.int64)
    )
    out_u: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    remaining = m
    while remaining > 0:
        batch = max(1024, int(remaining * 1.2))
        uu = rng.integers(0, n, batch, dtype=np.int64)
        vv = rng.integers(0, n, batch, dtype=np.int64)
        ok = uu != vv
        uu, vv = uu[ok], vv[ok]
        lo = np.minimum(uu, vv)
        hi = np.maximum(uu, vv)
        keys = lo * np.int64(n) + hi
        # Unique within the batch (keep first occurrences, preserving draw order).
        _, first = np.unique(keys, return_index=True)
        first.sort()
        uu, vv, keys = uu[first], vv[first], keys[first]
        # Drop keys already chosen in earlier rounds / pre-existing edges.
        fresh = ~np.isin(keys, keys_seen, assume_unique=False)
        uu, vv, keys = uu[fresh], vv[fresh], keys[fresh]
        if uu.size > remaining:
            uu, vv, keys = uu[:remaining], vv[:remaining], keys[:remaining]
        out_u.append(uu)
        out_v.append(vv)
        keys_seen = np.concatenate([keys_seen, keys])
        remaining -= uu.size
    u = np.concatenate(out_u) if out_u else np.empty(0, dtype=np.int64)
    v = np.concatenate(out_v) if out_v else np.empty(0, dtype=np.int64)
    return u, v


def random_graph(n: int, m: int, seed: int = 0) -> EdgeList:
    """The paper's random input: ``m`` unique undirected edges added to
    ``n`` isolated vertices."""
    if n < 0 or m < 0:
        raise GraphError(f"invalid sizes n={n}, m={m}")
    rng = _rng("random", n, m, seed)
    u, v = _sample_unique_edges(n, m, rng)
    return EdgeList(n, u, v)


def hybrid_graph(
    n: int,
    m: int,
    seed: int = 0,
    core_edge_factor: float = 16.0,
    rmat_probs: tuple[float, float, float, float] = DEFAULT_RMAT_PROBS,
) -> EdgeList:
    """The paper's hybrid input: an R-MAT scale-free core over
    ``2*sqrt(n)`` randomly selected vertices, filled with uniform random
    edges up to ``m`` total.

    The paper does not state the core's edge budget; we use
    ``min(m // 4, core_edge_factor * |core|)`` which yields hubs of degree
    ``O(sqrt(n))`` (matching the paper's load-balance discussion) while
    leaving most edges uniform.  Vertex ids inside the core are randomly
    relabeled so the result "does not contain obvious locality pattern".
    """
    if n < 4:
        raise GraphError(f"hybrid graphs need n >= 4, got {n}")
    if m < 0:
        raise GraphError(f"negative edge count {m}")
    rng = _rng("hybrid", n, m, seed)

    core_size = min(n, max(4, int(2 * math.sqrt(n))))
    scale = max(2, math.ceil(math.log2(core_size)))
    core_vertices = rng.choice(n, size=2**scale if 2**scale <= n else core_size, replace=False)
    # Pad the id table up to 2**scale by reusing core vertices: R-MAT draws
    # land on real, randomly placed vertices either way.
    table = np.empty(2**scale, dtype=np.int64)
    table[: core_vertices.size] = core_vertices
    if core_vertices.size < table.size:
        table[core_vertices.size :] = rng.choice(core_vertices, table.size - core_vertices.size)

    core_budget = int(min(m // 4, core_edge_factor * core_size))
    cu, cv = rmat_edges(scale, core_budget, rng, probs=rmat_probs)
    cu, cv = table[cu], table[cv]
    keep = cu != cv
    cu, cv = cu[keep], cv[keep]
    lo, hi = np.minimum(cu, cv), np.maximum(cu, cv)
    keys = lo * np.int64(n) + hi
    uniq_keys, first = np.unique(keys, return_index=True)
    first.sort()
    cu, cv = cu[first], cv[first]

    fill = m - cu.size
    if fill < 0:  # pragma: no cover - defensive; dedup only shrinks the core
        cu, cv = cu[:m], cv[:m]
        fill = 0
    fu, fv = _sample_unique_edges(n, fill, rng, existing_keys=np.sort(keys[first]))
    u = np.concatenate([cu, fu])
    v = np.concatenate([cv, fv])
    # Shuffle edge order so the core is not clustered at the front of the
    # list (the distributed edge partition must not see artificial skew).
    order = rng.permutation(u.size)
    return EdgeList(n, u[order], v[order])


def powerlaw_graph(n: int, m: int, seed: int = 0, exponent: float = 2.5) -> EdgeList:
    """Configuration-model power-law input: ``m`` unique undirected edges
    whose endpoints are drawn from a seeded heavy-tailed stub
    distribution.

    Chung–Lu stub weights ``w_i ∝ rank^(-1/(exponent-1))`` give a degree
    tail ``P(deg >= k) ~ k^(1-exponent)`` — hubs far heavier than the
    hybrid input's R-MAT core, which is what makes this family the
    stress case for the ``offload`` hot-vertex optimization and for the
    Liu–Tarjan alter variants (label concentration happens in round
    one).  Vertex ranks are randomly relabeled so the hubs scatter
    across the blocked id space, and edge order is shuffled like the
    other families.  Deterministic function of ``(n, m, seed,
    exponent)``, independent of any thread count.

    Stub sampling saturates once the hub-pair combinations are used up;
    the remainder is filled with uniform unique edges (the same filler
    the hybrid family uses), so exactly ``m`` edges always come back.
    """
    if n < 0 or m < 0:
        raise GraphError(f"invalid sizes n={n}, m={m}")
    if exponent <= 1.0:
        raise GraphError(f"powerlaw exponent must exceed 1, got {exponent}")
    if m > _max_simple_edges(n):
        raise GraphError(f"requested {m} unique edges but only {_max_simple_edges(n)} fit (n={n})")
    if m == 0:
        return empty_graph(n)
    rng = _rng("powerlaw", n, m, seed, int(round(exponent * 1000)))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    p = weights / weights.sum()
    perm = rng.permutation(n)

    keys_seen = np.empty(0, dtype=np.int64)
    out_u: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    remaining = m
    stalls = 0
    while remaining > 0 and stalls < 4:
        batch = max(1024, int(remaining * 1.5))
        uu = perm[rng.choice(n, size=batch, p=p)]
        vv = perm[rng.choice(n, size=batch, p=p)]
        ok = uu != vv
        uu, vv = uu[ok], vv[ok]
        lo, hi = np.minimum(uu, vv), np.maximum(uu, vv)
        keys = lo * np.int64(n) + hi
        _, first = np.unique(keys, return_index=True)
        first.sort()
        uu, vv, keys = uu[first], vv[first], keys[first]
        fresh = ~np.isin(keys, keys_seen, assume_unique=False)
        uu, vv, keys = uu[fresh], vv[fresh], keys[fresh]
        if uu.size == 0:
            stalls += 1
            continue
        stalls = 0
        if uu.size > remaining:
            uu, vv, keys = uu[:remaining], vv[:remaining], keys[:remaining]
        out_u.append(uu)
        out_v.append(vv)
        keys_seen = np.concatenate([keys_seen, keys])
        remaining -= uu.size
    if remaining > 0:
        fu, fv = _sample_unique_edges(n, remaining, rng, existing_keys=np.sort(keys_seen))
        out_u.append(fu)
        out_v.append(fv)
    u = np.concatenate(out_u)
    v = np.concatenate(out_v)
    order = rng.permutation(u.size)
    return EdgeList(n, u[order], v[order])


def with_random_weights(graph: EdgeList, seed: int = 0, max_weight: int = MAX_WEIGHT) -> EdgeList:
    """Attach the paper's MST weights: uniform integers in [0, max_weight)."""
    if max_weight < 1:
        raise GraphError(f"max_weight must be >= 1, got {max_weight}")
    rng = _rng("weights", graph.n, graph.m, seed)
    w = rng.integers(0, max_weight, graph.m, dtype=np.int64)
    return graph.with_weights(w)


# ---------------------------------------------------------------------------
# Structured graphs for tests and examples
# ---------------------------------------------------------------------------


def empty_graph(n: int) -> EdgeList:
    """``n`` isolated vertices."""
    return EdgeList(n, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def path_graph(n: int) -> EdgeList:
    """0-1-2-...-(n-1): worst case for pointer-jumping depth."""
    if n < 1:
        raise GraphError("path needs n >= 1")
    idx = np.arange(n - 1, dtype=np.int64)
    return EdgeList(n, idx, idx + 1)


def cycle_graph(n: int) -> EdgeList:
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    idx = np.arange(n, dtype=np.int64)
    return EdgeList(n, idx, (idx + 1) % n)


def star_graph(n: int, center: int = 0) -> EdgeList:
    """One hub connected to everything: the communication-hotspot case
    the ``offload`` optimization targets."""
    if n < 2:
        raise GraphError("star needs n >= 2")
    if not 0 <= center < n:
        raise GraphError("center out of range")
    leaves = np.array([i for i in range(n) if i != center], dtype=np.int64)
    return EdgeList(n, np.full(n - 1, center, dtype=np.int64), leaves)


def complete_graph(n: int) -> EdgeList:
    if n < 1:
        raise GraphError("complete graph needs n >= 1")
    iu = np.triu_indices(n, k=1)
    return EdgeList(n, iu[0].astype(np.int64), iu[1].astype(np.int64))


def disjoint_components_graph(blocks: int, block_size: int, seed: int = 0) -> EdgeList:
    """``blocks`` disjoint random connected blobs — exercises component
    counting and the ``compact`` optimization (intra-component edges)."""
    if blocks < 1 or block_size < 1:
        raise GraphError("need blocks >= 1 and block_size >= 1")
    n = blocks * block_size
    rng = _rng("blocks", blocks, block_size, seed)
    us, vs = [], []
    for b in range(blocks):
        base = b * block_size
        if block_size == 1:
            continue
        # Random spanning tree (random parent attachment) + a few extras.
        parents = rng.integers(0, np.arange(1, block_size), dtype=np.int64, endpoint=False)
        us.append(base + np.arange(1, block_size, dtype=np.int64))
        vs.append(base + parents)
        extra = min(block_size, 4)
        eu = base + rng.integers(0, block_size, extra, dtype=np.int64)
        ev = base + rng.integers(0, block_size, extra, dtype=np.int64)
        ok = eu != ev
        us.append(eu[ok])
        vs.append(ev[ok])
    if not us:
        return empty_graph(n)
    return EdgeList(n, np.concatenate(us), np.concatenate(vs))


def grid_graph(rows: int, cols: int, periodic: bool = False) -> EdgeList:
    """A 2-D grid (mesh) graph: vertex ``(r, c)`` has id ``r * cols + c``.

    With ``periodic=True`` the grid wraps into a torus.  Grids are the
    locality-friendly counterpoint to the random/hybrid inputs: the
    blocked shared-array layout keeps most neighbors on-node, which the
    layout-sensitivity tests and examples exploit.
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    us, vs = [], []
    if cols > 1:
        us.append(ids[:, :-1].ravel())
        vs.append(ids[:, 1:].ravel())
    if rows > 1:
        us.append(ids[:-1, :].ravel())
        vs.append(ids[1:, :].ravel())
    if periodic and cols > 2:
        us.append(ids[:, -1].ravel())
        vs.append(ids[:, 0].ravel())
    if periodic and rows > 2:
        us.append(ids[-1, :].ravel())
        vs.append(ids[0, :].ravel())
    if not us:
        return empty_graph(n)
    return EdgeList(n, np.concatenate(us), np.concatenate(vs))
