"""Edge-list graph container.

The paper's algorithms take an edge list as input ("CC takes an edge list
as input"); this module provides the container used across the library:
parallel ``u``/``v`` arrays of int64 endpoints, an optional int64 weight
array for MST, and the vertex count ``n``.

The container is deliberately array-oriented (no per-edge objects): the
simulated SPMD implementations operate on NumPy slices of it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Tuple

import numpy as np

from ..errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    import networkx as nx
    from scipy import sparse

__all__ = ["EdgeList"]


@dataclass
class EdgeList:
    """An undirected multigraph given as arrays of endpoints.

    Attributes
    ----------
    n:
        Number of vertices; ids are ``0 .. n-1``.
    u, v:
        Endpoint arrays (int64, same length ``m``).
    w:
        Optional edge weights (int64, same length), present for MST
        inputs.  The paper draws weights "randomly chosen between 0 and
        the maximum integer number".
    """

    n: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.u = np.ascontiguousarray(self.u, dtype=np.int64)
        self.v = np.ascontiguousarray(self.v, dtype=np.int64)
        if self.w is not None:
            self.w = np.ascontiguousarray(self.w, dtype=np.int64)
        self.validate()

    # -- invariants -----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphError` on malformed inputs."""
        if self.n < 0:
            raise GraphError(f"negative vertex count {self.n}")
        if self.u.ndim != 1 or self.v.ndim != 1 or self.u.shape != self.v.shape:
            raise GraphError("u and v must be 1-D arrays of equal length")
        if self.w is not None and self.w.shape != self.u.shape:
            raise GraphError("w must match the edge count")
        if self.m:
            lo = min(int(self.u.min()), int(self.v.min()))
            hi = max(int(self.u.max()), int(self.v.max()))
            if lo < 0 or hi >= self.n:
                raise GraphError(
                    f"edge endpoints out of range: saw [{lo}, {hi}] for n={self.n}"
                )

    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self.u.shape[0])

    @property
    def weighted(self) -> bool:
        return self.w is not None

    @property
    def density(self) -> float:
        """Average edge density ``m / n`` (the quantity on the paper's
        Fig. 2 x-axis)."""
        return self.m / self.n if self.n else 0.0

    # -- transforms -------------------------------------------------------------

    def canonical_pairs(self) -> np.ndarray:
        """Each edge as ``(min, max)`` packed into one int64 key —
        identical for both orientations of an undirected edge."""
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        return lo * np.int64(self.n) + hi

    def deduplicated(self) -> "EdgeList":
        """Remove duplicate undirected edges (keeping the first
        occurrence, which for weighted graphs keeps that edge's weight)."""
        keys = self.canonical_pairs()
        _, first = np.unique(keys, return_index=True)
        first.sort()
        w = self.w[first] if self.w is not None else None
        return EdgeList(self.n, self.u[first], self.v[first], w)

    def without_self_loops(self) -> "EdgeList":
        keep = self.u != self.v
        w = self.w[keep] if self.w is not None else None
        return EdgeList(self.n, self.u[keep], self.v[keep], w)

    def symmetrized(self) -> "EdgeList":
        """Both orientations of every edge (used by per-vertex scans)."""
        u = np.concatenate([self.u, self.v])
        v = np.concatenate([self.v, self.u])
        w = np.concatenate([self.w, self.w]) if self.w is not None else None
        return EdgeList(self.n, u, v, w)

    def permuted(self, perm: np.ndarray) -> "EdgeList":
        """Relabel vertices: vertex ``i`` becomes ``perm[i]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n,):
            raise GraphError(f"permutation must have length n={self.n}")
        if not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise GraphError("perm is not a permutation of 0..n-1")
        return EdgeList(self.n, perm[self.u], perm[self.v], self.w)

    def with_weights(self, w: np.ndarray) -> "EdgeList":
        return EdgeList(self.n, self.u, self.v, w)

    def shuffled(self, seed: int) -> "EdgeList":
        """Shuffle edge order (affects work distribution, not the graph)."""
        order = np.random.default_rng(seed).permutation(self.m)
        w = self.w[order] if self.w is not None else None
        return EdgeList(self.n, self.u[order], self.v[order], w)

    def take(self, index: np.ndarray) -> "EdgeList":
        w = self.w[index] if self.w is not None else None
        return EdgeList(self.n, self.u[index], self.v[index], w)

    # -- degree / structure -------------------------------------------------------

    def degrees(self) -> np.ndarray:
        """Undirected degree of every vertex (self-loops count twice)."""
        deg = np.bincount(self.u, minlength=self.n)
        deg += np.bincount(self.v, minlength=self.n)
        return deg

    def max_degree(self) -> int:
        return int(self.degrees().max(initial=0))

    # -- interop ---------------------------------------------------------------

    def to_networkx(self) -> "nx.Graph":
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        if self.w is not None:
            g.add_weighted_edges_from(zip(self.u.tolist(), self.v.tolist(), self.w.tolist()))
        else:
            g.add_edges_from(zip(self.u.tolist(), self.v.tolist()))
        return g

    def to_scipy(self) -> "sparse.csr_matrix":
        """Symmetric CSR adjacency (weights if present, else 1s).

        For weighted graphs, parallel edges keep the *minimum* weight so
        downstream MST totals are well defined.
        """
        from scipy import sparse

        if self.w is not None:
            # scipy's coo duplicate handling sums; dedup to min first.
            dedup = self.deduplicated_min_weight()
            data = dedup.w.astype(np.float64)
            mat = sparse.coo_matrix((data, (dedup.u, dedup.v)), shape=(self.n, self.n))
        else:
            mat = sparse.coo_matrix(
                (np.ones(self.m), (self.u, self.v)), shape=(self.n, self.n)
            )
        upper = mat.tocsr()
        return upper + upper.T

    def dedup_min_weight_index(self) -> np.ndarray:
        """Edge positions to keep so each undirected pair appears once
        with its minimum weight (ties broken toward the earliest edge);
        sorted ascending."""
        if self.m == 0:
            return np.empty(0, dtype=np.int64)
        keys = self.canonical_pairs()
        if self.w is None:
            _, first = np.unique(keys, return_index=True)
            first.sort()
            return first.astype(np.int64)
        order = np.lexsort((np.arange(self.m), self.w, keys))
        keys_sorted = keys[order]
        first = np.ones(self.m, dtype=bool)
        first[1:] = keys_sorted[1:] != keys_sorted[:-1]
        return np.sort(order[first]).astype(np.int64)

    def deduplicated_min_weight(self) -> "EdgeList":
        """Collapse parallel undirected edges keeping the minimum weight
        (ties broken toward the earliest edge)."""
        keep = self.dedup_min_weight_index()
        w = self.w[keep] if self.w is not None else None
        return EdgeList(self.n, self.u[keep], self.v[keep], w)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Python-level edge iterator (tests/small inputs only)."""
        for a, b in zip(self.u.tolist(), self.v.tolist()):
            yield a, b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.weighted else "unweighted"
        return f"EdgeList(n={self.n}, m={self.m}, {kind})"
