"""High-level solver entry points.

The public API a downstream user calls:

>>> from repro import connected_components, random_graph, hps_cluster
>>> g = random_graph(100_000, 400_000, seed=0)
>>> result = connected_components(g, machine=hps_cluster(16, 8))
>>> result.num_components, result.info.sim_time_ms

``impl`` selects the implementation (the paper's configurations);
``validate=True`` self-checks the answer against the scipy oracle before
returning.
"""

from __future__ import annotations

from ..algorithms import REGISTRY, get_algorithm, implementations
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..graph.validation import check_connected_counts
from ..mst.verify import check_spanning_forest
from ..runtime.machine import MachineConfig
from .optimizations import OptimizationFlags
from .results import CCResult, MSTResult


def resolve_tprime(tprime, machine: MachineConfig | None, n: int) -> int:
    """Resolve a ``tprime`` argument: an int passes through; ``"auto"``
    picks the smallest t' whose per-thread sub-block fits the modeled
    cache (the paper: "the size of t' is chosen such that the block fits
    into a certain level cache hierarchy, e.g. L2")."""
    if tprime == "auto":
        from ..runtime.machine import hps_cluster
        from ..runtime.cost import CostModel
        from ..scheduling.cache_model import best_tprime

        m = machine if machine is not None else hps_cluster()
        block_elems = max(1, n // m.total_threads)
        return best_tprime(block_elems, CostModel(m))
    if not isinstance(tprime, int) or tprime < 1:
        raise ConfigError(f"tprime must be a positive int or 'auto', got {tprime!r}")
    return tprime


def _resolve_auto(kind, graph, machine, impl, opts, tprime, graph_kind, adapt):
    """Resolve ``"auto"`` impl/opts/tprime through the autotuner.

    Returns ``(impl, opts, tprime, adapter)``.  A :class:`~repro.tuning.
    TuningPlan` (cached, or built with probe solves on first use) feeds
    every ``"auto"`` argument; explicit arguments always win over the
    plan.  When the plan's impl is one of the adaptive collective
    solvers, an :class:`~repro.tuning.OnlineAdapter` rides along
    (``adapt=False`` disables it; ``offload`` adaptation is CC-only —
    the MST solver's D[0] invariant forbids it).
    """
    auto_plan = impl == "auto" or opts == "auto"
    adapter = None
    if auto_plan and graph.n == 0:
        # Nothing to tune on an empty input; fall back to the defaults.
        impl = "collective" if impl == "auto" else impl
        opts = OptimizationFlags.all() if opts == "auto" else opts
        tprime = 1 if tprime == "auto" else tprime
        auto_plan = False
    if auto_plan:
        from ..runtime.machine import hps_cluster
        from ..tuning import OnlineAdapter, Workload, autotune

        m = machine if machine is not None else hps_cluster()
        workload = Workload(kind=kind, n=graph.n, m=graph.m, graph_kind=graph_kind)
        plan = autotune(workload, m)
        selected = plan.selected
        if impl == "auto":
            impl = selected.impl
        if opts == "auto":
            opts = selected.opts()
        if tprime == "auto":
            tprime = selected.tprime
        if adapt and impl == "collective":
            adapter = OnlineAdapter(m, graph.n, allow_offload=kind == "cc")
    tprime = resolve_tprime(tprime, machine, graph.n)
    return impl, opts, tprime, adapter


__all__ = [
    "connected_components",
    "resolve_tprime",
    "minimum_spanning_forest",
    "spanning_forest",
    "CC_IMPLS",
    "MST_IMPLS",
]

#: Public impl names: the registry's entries plus the ``'auto'`` mode
#: (which is pipeline dispatch, not an algorithm — the tuner resolves it
#: to a registered name before the solver runs).
CC_IMPLS = implementations("cc") + ("auto",)
MST_IMPLS = implementations("mst") + ("auto",)


def _dispatch(
    kind, impl, graph, machine, opts, tprime, sort_method, faults, adapter, integrity,
    resilience=None,
):
    """Resolve ``impl`` through :mod:`repro.algorithms` and run it, with
    capability gates replacing the old hard-coded impl lists."""
    spec = get_algorithm(kind, impl)
    if faults is not None and not spec.supports_faults:
        supported = tuple(
            s.name for (k, _), s in REGISTRY.items() if k == kind and s.supports_faults
        )
        raise ConfigError(
            f"fault injection is not supported for {kind.upper()} impl {impl!r};"
            f" use one of {supported}"
        )
    if integrity is not None and not spec.supports_integrity:
        supported = tuple(
            s.name for (k, _), s in REGISTRY.items() if k == kind and s.supports_integrity
        )
        raise ConfigError(
            f"integrity protection is not supported for {kind.upper()} impl {impl!r};"
            f" use one of {supported}"
        )
    if resilience is not None and not spec.supports_resilience:
        supported = tuple(
            s.name for (k, _), s in REGISTRY.items() if k == kind and s.supports_resilience
        )
        raise ConfigError(
            f"node-loss resilience is not supported for {kind.upper()} impl {impl!r};"
            f" use one of {supported}"
        )
    return spec.solve(
        graph, machine, opts, tprime, sort_method,
        faults, adapter if spec.supports_adapter else None, integrity, resilience,
    )


def connected_components(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    impl: str = "collective",
    opts: "OptimizationFlags | str" = OptimizationFlags.all(),
    tprime: "int | str" = 1,
    sort_method: str = "count",
    validate: bool = False,
    faults=None,
    graph_kind: str = "random",
    adapt: bool = True,
    integrity=None,
    resilience=None,
) -> CCResult:
    """Solve connected components on the simulated machine.

    Parameters
    ----------
    impl:
        ``'collective'`` (the paper's optimized CC), ``'sv'``
        (Shiloach-Vishkin with collectives), ``'naive'`` (literal UPC
        translation), ``'smp'`` (single-node baseline), ``'sequential'``,
        ``'cgm'`` (the round-minimizing communication-efficient baseline
        the paper argues against), or ``'auto'`` (let the
        :mod:`repro.tuning` planner choose).
    opts, tprime, sort_method:
        Section V optimization flags, the virtual-thread factor, and the
        grouping sort; only meaningful for the collective/sv impls.
        ``opts='auto'`` and ``tprime='auto'`` defer to the tuning plan
        (plain ``tprime='auto'`` without any other auto argument uses
        the cache-fit prediction directly — no probe solves).
    validate:
        Check the labeling against the scipy oracle before returning.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected into the run
        (``collective``, ``naive``, and ``smp`` impls only).
    graph_kind, adapt:
        Auto-mode context: the generator family the tuner probes with,
        and whether the online adapter may revise flags/t' mid-solve.
    integrity:
        Optional :class:`~repro.integrity.IntegrityConfig` (or ``True``)
        enabling silent-fault detection and verify-and-repair
        (``collective`` impl only — it owns the checkpoint/replay loop).
    resilience:
        Optional :class:`~repro.resilience.RedundancyConfig` (or
        ``True``) enabling survival of permanent node losses: the label
        array keeps charged off-node replicas/parity, and a fired
        :class:`~repro.faults.NodeLossEvent` triggers epoch recovery
        instead of :class:`~repro.errors.UnrecoverableLossError`
        (``collective`` and ``lt-*`` impls).
    """
    impl, opts, tprime, adapter = _resolve_auto(
        "cc", graph, machine, impl, opts, tprime, graph_kind, adapt
    )
    result = _dispatch(
        "cc", impl, graph, machine, opts, tprime, sort_method, faults, adapter, integrity,
        resilience=resilience,
    )
    if validate:
        check_connected_counts(result.labels, graph)
    return result


def minimum_spanning_forest(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    impl: str = "collective",
    opts: "OptimizationFlags | str" = OptimizationFlags.all(),
    tprime: "int | str" = 1,
    sort_method: str = "count",
    validate: bool = False,
    faults=None,
    graph_kind: str = "random",
    adapt: bool = True,
    integrity=None,
    resilience=None,
) -> MSTResult:
    """Solve minimum spanning forest on the simulated machine.

    ``impl`` is ``'collective'`` (lock-free SetDMin Borůvka),
    ``'naive'``, ``'smp'`` (lock-based baselines), a sequential
    algorithm name (``'kruskal'``, ``'prim'``, ``'boruvka'``), or
    ``'auto'`` (the :mod:`repro.tuning` planner chooses; ``opts`` and
    ``tprime`` may also be ``'auto'``).  ``faults`` optionally injects a
    :class:`~repro.faults.FaultPlan` into the simulated impls
    (``collective``, ``naive``, ``smp``).  ``graph_kind``/``adapt`` are
    the auto-mode context (probe family; allow mid-solve adaptation —
    t' only for MST, offload adaptation is structurally disabled).
    ``integrity`` optionally enables silent-fault detection and
    verify-and-repair (``collective`` impl only).  ``resilience``
    optionally enables permanent-node-loss survival via charged
    owner-block redundancy and epoch recovery (``collective`` impl
    only; see :mod:`repro.resilience`).
    """
    impl, opts, tprime, adapter = _resolve_auto(
        "mst", graph, machine, impl, opts, tprime, graph_kind, adapt
    )
    result = _dispatch(
        "mst", impl, graph, machine, opts, tprime, sort_method, faults, adapter, integrity,
        resilience=resilience,
    )
    if validate:
        check_spanning_forest(graph, result.edge_ids)
    return result


def spanning_forest(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: "int | str" = 1,
    sort_method: str = "count",
    validate: bool = False,
) -> MSTResult:
    """Unweighted spanning forest (the paper's "closely related spanning
    tree algorithm").

    Runs the collective Borůvka machinery with uniform weights, so the
    deterministic (weight, edge id) tie-break reduces to edge-id order:
    the returned forest is the earliest-id spanning forest, identical
    across machine shapes.  ``total_weight`` equals the edge count.
    """
    import numpy as np

    tprime = resolve_tprime(tprime, machine, graph.n)
    unit = graph.with_weights(np.ones(graph.m, dtype=np.int64))
    result = _dispatch(
        "mst", "collective", unit, machine, opts, tprime, sort_method, None, None, None
    )
    if validate:
        check_spanning_forest(unit, result.edge_ids)
    return result
