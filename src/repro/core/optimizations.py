"""Optimization flags (the paper's Section V engineering techniques).

The paper evaluates six cumulative optimizations on top of the
collective-based rewrite (Figs. 5-6):

* ``compact``  — filter edges that fell inside a component; shrinks both
  local work and communication in later iterations;
* ``offload``  — don't request ``D[0]`` (it is constant 0): drop those
  indices from the request list, defusing the communication hotspot at
  the thread owning vertex 0;
* ``circular`` — communicate in the order ``i, i+1, ..., (i+s-1) mod s``
  so each step pairs every sender with a distinct receiver (vs. the
  linear order where all threads hit thread 0, then thread 1, ...);
* ``localcpy`` — access the local portion of shared arrays through
  private pointers, skipping the UPC runtime's affinity checks;
* ``ids``      — compute target thread ids with direct (vectorizable)
  arithmetic instead of compiler intrinsics, and cache them across
  iterations (the request arrays — edge endpoints — do not change);
* ``rdma``     — use remote DMA for the coalesced bulk transfers,
  skipping per-message software overhead.

``OptimizationFlags.cumulative()`` reproduces the left-to-right bar
accumulation of Fig. 5 (``base``, ``compact``, ``offload``, ``circular``,
``localcpy``, ``id``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Iterator

from ..errors import ConfigError

__all__ = ["OptimizationFlags", "FIG5_ORDER", "LATTICE_ORDER"]

#: Left-to-right bar order of the paper's Fig. 5.
FIG5_ORDER = ("compact", "offload", "circular", "localcpy", "ids")

#: The flags the autotuner's lattice search spans: the five Fig. 5
#: optimizations plus ``rdma`` (part of the paper's "Optimized"
#: configuration).  ``hierarchical`` stays out — it is the future-work
#: proposal, not one of the paper's measured knobs.
LATTICE_ORDER = FIG5_ORDER + ("rdma",)


@dataclass(frozen=True)
class OptimizationFlags:
    """Which Section V optimizations are active.

    ``hierarchical`` is *not* one of the paper's optimizations — it is
    the paper's Section VI/VII **future-work proposal**, implemented
    here: "The thread-process hierarchy is exposed to the runtime, and
    the AlltoAll collective does not have to involve s = p x t threads in
    communication across the network.  Instead, it may involve only p
    processes."  With it on, each node's threads aggregate their
    SMatrix/PMatrix entries and payload messages locally, and only one
    leader per node talks across the network — which removes the
    256-thread incast collapse of Figs. 7-10.  It is off in ``all()`` so
    the paper's measured configurations stay faithful; see
    ``benchmarks/bench_future_hierarchical.py``.
    """

    compact: bool = False
    offload: bool = False
    circular: bool = False
    localcpy: bool = False
    ids: bool = False
    rdma: bool = False
    hierarchical: bool = False

    @classmethod
    def none(cls) -> "OptimizationFlags":
        """The ``base`` configuration of Fig. 5 (collectives only)."""
        return cls()

    @classmethod
    def all(cls) -> "OptimizationFlags":
        """Everything the paper evaluated — its "Optimized" configuration
        (``hierarchical`` stays off: the paper proposed it as future
        work)."""
        return cls(compact=True, offload=True, circular=True, localcpy=True, ids=True, rdma=True)

    @classmethod
    def only(cls, *names: str) -> "OptimizationFlags":
        valid = {f.name for f in fields(cls)}
        unknown = set(names) - valid
        if unknown:
            raise ConfigError(f"unknown optimization flags {sorted(unknown)}; valid: {sorted(valid)}")
        return cls(**{name: True for name in names})

    @classmethod
    def cumulative(cls) -> Iterator[tuple[str, "OptimizationFlags"]]:
        """Yield ``(label, flags)`` pairs matching Fig. 5's cumulative
        bars: base, then each optimization added in paper order."""
        flags = cls.none()
        yield "base", flags
        for name in FIG5_ORDER:
            flags = replace(flags, **{name: True})
            label = "id" if name == "ids" else name
            yield label, flags

    @classmethod
    def lattice(cls) -> Iterator["OptimizationFlags"]:
        """Every point of the optimization-flag lattice — all ``2^6``
        subsets of :data:`LATTICE_ORDER`, in a deterministic order
        (smaller subsets first, then lexicographic by flag position).
        This is the space the ``repro.tuning`` planner searches and the
        exhaustive tuning benchmark sweeps."""
        for r in range(len(LATTICE_ORDER) + 1):
            for names in itertools.combinations(LATTICE_ORDER, r):
                yield cls.only(*names)

    def key(self) -> str:
        """Canonical, order-stable spelling of the enabled flags (used as
        part of tuning-plan cache keys); ``base`` when none are on."""
        names = [f for f in LATTICE_ORDER + ("hierarchical",) if getattr(self, f)]
        return "+".join(names) if names else "base"

    def with_(self, **updates: bool) -> "OptimizationFlags":
        valid = {f.name for f in fields(self)}
        unknown = set(updates) - valid
        if unknown:
            raise ConfigError(f"unknown optimization flags {sorted(unknown)}")
        return replace(self, **updates)

    def enabled(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self) if getattr(self, f.name))

    def describe(self) -> str:
        names = self.enabled()
        return "+".join(names) if names else "base"
