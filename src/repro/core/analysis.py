"""Closed-form complexity analysis from the paper's Section III.

The paper derives three expressions for CC and compares fine-grained
remote access against local memory access on then-current hardware:

* Eq. (1) — computational complexity
  ``T_C(n, p) = O((n log^2 n + m log n) / p)``;
* Eq. (2) — memory access complexity under the SMP model
  ``T_M(n, p) <= n log^2 n / p + (m/p + 2) log n``;
* Eq. (3) — expected remote-access time of the naive UPC translation
  ``T_remote <= (p-1)/(p s) (n log n + 4m + 2s) log n (L + 1/B)``;
* the per-node serialized communication time
  ``~ (1/p)(n log n + 4m + 2s) log n (L + 1/B)``;
* and the headline estimate: with Infiniband (190 ns) vs DDR3 (9 ns)
  constants, "for data access, we estimate CC-UPC is over 20 times
  slower than CC-SMP".

These are *model* formulas (unit-free counts scaled by per-access
costs); the benchmark ``bench_sec3_analysis_table`` prints them next to
the simulator's measured counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..runtime.cost import ELEM_BYTES
from ..runtime.machine import MachineConfig, infiniband_cluster

__all__ = [
    "cc_computation_ops",
    "cc_memory_accesses",
    "cc_remote_access_time",
    "cc_serialized_comm_time",
    "cc_smp_noncontig_time",
    "naive_slowdown_estimate",
    "AnalysisRow",
]


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def cc_computation_ops(n: int, m: int, p: int) -> float:
    """Eq. (1): local operations per processor (constant factor 1)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return (n * _log2(n) ** 2 + m * _log2(n)) / p


def cc_memory_accesses(n: int, m: int, p: int) -> float:
    """Eq. (2): non-contiguous memory accesses per processor."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return n * _log2(n) ** 2 / p + (m / p + 2) * _log2(n)


def cc_remote_access_time(n: int, m: int, machine: MachineConfig) -> float:
    """Eq. (3): expected per-thread remote access time of naive CC-UPC."""
    p, s = machine.nodes, machine.total_threads
    net = machine.network
    per_access = net.latency + ELEM_BYTES / net.bandwidth
    return (p - 1) / (p * s) * (n * _log2(n) + 4 * m + 2 * s) * _log2(n) * per_access


def cc_serialized_comm_time(n: int, m: int, machine: MachineConfig) -> float:
    """Per-node communication time when the t threads' blocking messages
    serialize through the NIC (the paper's ~(1/p)(...) expression)."""
    p, s = machine.nodes, machine.total_threads
    net = machine.network
    per_access = net.latency + ELEM_BYTES / net.bandwidth
    return (n * _log2(n) + 4 * m + 2 * s) * _log2(n) * per_access / p


def cc_smp_noncontig_time(n: int, m: int, machine: MachineConfig) -> float:
    """Time CC-SMP spends on non-contiguous accesses (Eq. (2) scaled by
    the memory per-access cost)."""
    mem = machine.memory
    per_access = mem.latency + ELEM_BYTES / mem.bandwidth
    return cc_memory_accesses(n, m, machine.total_threads) * per_access


def naive_slowdown_estimate(machine: MachineConfig | None = None) -> float:
    """The Section III headline: per-access cost ratio of fine-grained
    remote vs local memory access.  With the paper's quoted constants
    (Infiniband 190 ns / 4 GB/s vs DDR3 9 ns) this lands near 20."""
    machine = machine if machine is not None else infiniband_cluster()
    net, mem = machine.network, machine.memory
    remote = net.latency + ELEM_BYTES / net.bandwidth
    local = mem.latency + ELEM_BYTES / mem.bandwidth
    return remote / local


@dataclass(frozen=True)
class AnalysisRow:
    """One printable row of the Section III analysis table."""

    quantity: str
    value: float
    unit: str

    def render(self) -> str:
        return f"{self.quantity:<44s} {self.value:14.4g} {self.unit}"


def section3_table(n: int, m: int, machine: MachineConfig) -> list[AnalysisRow]:
    """All Section III quantities for one input/machine combination."""
    return [
        AnalysisRow("Eq.(1) T_C ops/processor", cc_computation_ops(n, m, machine.total_threads), "ops"),
        AnalysisRow("Eq.(2) T_M accesses/processor", cc_memory_accesses(n, m, machine.total_threads), "accesses"),
        AnalysisRow("Eq.(3) T_remote per thread", cc_remote_access_time(n, m, machine), "s"),
        AnalysisRow("serialized comm time per node", cc_serialized_comm_time(n, m, machine), "s"),
        AnalysisRow("CC-SMP non-contiguous access time", cc_smp_noncontig_time(n, m, machine), "s"),
        AnalysisRow("naive per-access slowdown estimate", naive_slowdown_estimate(machine), "x"),
    ]
