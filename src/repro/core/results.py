"""Result objects returned by the solvers.

Every solver returns its algorithmic output *plus* the simulation's
performance accounting: modeled (simulated-cluster) time, the Fig. 5
category breakdown, raw counters, and the wall-clock cost of running the
simulation itself (reported for transparency; it is not a performance
claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..runtime.machine import MachineConfig
from ..runtime.trace import Trace

__all__ = ["SolveInfo", "CCResult", "MSTResult", "canonical_labels"]


@dataclass
class SolveInfo:
    """Performance accounting common to all solvers."""

    machine: MachineConfig
    impl: str
    sim_time: float
    wall_time: float
    iterations: int
    trace: Trace

    @property
    def sim_time_ms(self) -> float:
        return self.sim_time * 1e3

    def breakdown(self) -> Dict[str, float]:
        """Average per-thread seconds per Fig. 5 category."""
        return self.trace.breakdown(self.machine.total_threads)

    def describe(self) -> str:
        return (
            f"{self.impl} on {self.machine.name}: sim {self.sim_time * 1e3:.3f} ms"
            f" in {self.iterations} iteration(s)"
            f" ({self.trace.counters.remote_messages} messages,"
            f" {self.trace.counters.remote_bytes} remote bytes)"
        )


@dataclass
class CCResult:
    """Connected-components output."""

    labels: np.ndarray
    info: SolveInfo

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size) if self.labels.size else 0

    def canonical(self) -> np.ndarray:
        return canonical_labels(self.labels)


@dataclass
class MSTResult:
    """Minimum spanning forest output.

    ``edge_ids`` indexes the *input* edge list; the forest's edges are
    ``(graph.u[edge_ids], graph.v[edge_ids])``.
    """

    edge_ids: np.ndarray
    total_weight: int
    labels: np.ndarray = field(repr=False, default=None)  # final components
    info: SolveInfo = None

    @property
    def num_edges(self) -> int:
        return int(self.edge_ids.size)


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel components canonically: each component gets the smallest
    vertex id it contains.  Two labelings describe the same partition iff
    their canonical forms are equal."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return labels.astype(np.int64)
    uniq, inverse = np.unique(labels, return_inverse=True)
    # Smallest member vertex per component.
    mins = np.full(uniq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, inverse, np.arange(labels.size, dtype=np.int64))
    return mins[inverse]
