"""Scaling-study analytics: speedup, efficiency, serial fraction.

The paper reports raw speedups; a downstream user studying the simulated
machine usually wants the derived quantities too.  This module computes
them from a sweep of :class:`~repro.core.results.SolveInfo` objects:

* **speedup** ``S(p) = T_ref / T(p)``;
* **parallel efficiency** ``E(p) = S(p) / p``;
* **Karp-Flatt experimentally determined serial fraction**
  ``e(p) = (1/S - 1/p) / (1 - 1/p)`` — rising ``e`` with ``p`` indicates
  growing overhead (for this system: the all-to-all setup and the
  hotspot serves), not an inherent serial component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..errors import ConfigError
from .results import SolveInfo

__all__ = ["ScalingPoint", "ScalingStudy", "run_scaling_study"]


@dataclass(frozen=True)
class ScalingPoint:
    """One configuration of a scaling sweep."""

    threads: int
    sim_time: float
    speedup: float

    @property
    def efficiency(self) -> float:
        return self.speedup / self.threads if self.threads else 0.0

    @property
    def karp_flatt(self) -> float:
        """Experimentally determined serial fraction (undefined at p=1)."""
        p, s = self.threads, self.speedup
        if p <= 1 or s <= 0:
            return 0.0
        return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)


@dataclass
class ScalingStudy:
    """A reference time plus a series of scaling points."""

    reference_time: float
    points: List[ScalingPoint]

    @classmethod
    def from_infos(
        cls, reference: SolveInfo, infos: Sequence[SolveInfo]
    ) -> "ScalingStudy":
        if reference.sim_time <= 0:
            raise ConfigError("reference run has non-positive simulated time")
        points = [
            ScalingPoint(
                threads=info.machine.total_threads,
                sim_time=info.sim_time,
                speedup=reference.sim_time / info.sim_time,
            )
            for info in infos
        ]
        points.sort(key=lambda pt: pt.threads)
        return cls(reference.sim_time, points)

    def best(self) -> ScalingPoint:
        if not self.points:
            raise ConfigError("empty scaling study")
        return min(self.points, key=lambda pt: pt.sim_time)

    def table_rows(self) -> List[List[object]]:
        return [
            [pt.threads, round(pt.sim_time * 1e3, 4), round(pt.speedup, 3),
             round(pt.efficiency, 4), round(pt.karp_flatt, 4)]
            for pt in self.points
        ]

    def render(self) -> str:
        from ..bench.report import format_table

        return format_table(
            ["threads", "sim ms", "speedup", "efficiency", "Karp-Flatt e"],
            self.table_rows(),
        )

    def overhead_grows(self) -> bool:
        """True when the Karp-Flatt fraction rises with thread count —
        the signature of overhead-bound (not serial-bound) scaling."""
        usable = [pt for pt in self.points if pt.threads > 1]
        if len(usable) < 2:
            return False
        return usable[-1].karp_flatt > usable[0].karp_flatt


def run_scaling_study(
    solve: Callable[[object], "SolveInfoLike"],
    machines: Sequence[object],
    reference_solve: Callable[[], "SolveInfoLike"],
) -> ScalingStudy:
    """Run ``solve(machine)`` over the sweep, anchored by
    ``reference_solve()`` (typically the sequential baseline).

    ``solve`` may return a result object carrying ``.info`` or a
    :class:`SolveInfo` directly.
    """
    def unwrap(result) -> SolveInfo:
        return result.info if hasattr(result, "info") else result

    reference = unwrap(reference_solve())
    infos: Dict[int, SolveInfo] = {}
    for machine in machines:
        info = unwrap(solve(machine))
        infos[info.machine.total_threads] = info
    return ScalingStudy.from_infos(reference, list(infos.values()))
