"""High-level API: optimization flags, solvers, results, analysis,
benchmark calibration."""

from .analysis import (
    cc_computation_ops,
    cc_memory_accesses,
    cc_remote_access_time,
    cc_serialized_comm_time,
    cc_smp_noncontig_time,
    naive_slowdown_estimate,
    section3_table,
)
from .calibration import (
    DEFAULT_BENCH_N,
    PAPER_N_FIG3,
    PAPER_N_LARGE,
    PAPER_NODES,
    PAPER_THREADS_PER_NODE,
    cluster_for_input,
    machine_for_input,
    sequential_for_input,
    smp_for_input,
)
from .optimizations import FIG5_ORDER, OptimizationFlags
from .pipeline import (
    CC_IMPLS,
    MST_IMPLS,
    connected_components,
    minimum_spanning_forest,
    spanning_forest,
)
from .results import CCResult, MSTResult, SolveInfo, canonical_labels
from .scaling import ScalingPoint, ScalingStudy, run_scaling_study

__all__ = [
    "CCResult",
    "CC_IMPLS",
    "DEFAULT_BENCH_N",
    "FIG5_ORDER",
    "MSTResult",
    "MST_IMPLS",
    "OptimizationFlags",
    "PAPER_NODES",
    "PAPER_N_FIG3",
    "PAPER_N_LARGE",
    "PAPER_THREADS_PER_NODE",
    "ScalingPoint",
    "ScalingStudy",
    "SolveInfo",
    "run_scaling_study",
    "canonical_labels",
    "cc_computation_ops",
    "cc_memory_accesses",
    "cc_remote_access_time",
    "cc_serialized_comm_time",
    "cc_smp_noncontig_time",
    "cluster_for_input",
    "connected_components",
    "machine_for_input",
    "minimum_spanning_forest",
    "spanning_forest",
    "naive_slowdown_estimate",
    "section3_table",
    "sequential_for_input",
    "section3_table",
    "smp_for_input",
]
