"""Input scaling and machine calibration for the benchmarks.

The paper's evaluation runs on 100M-vertex graphs with 400M-1G edges —
out of reach for a pure-Python simulation.  The benchmarks run the same
*density ratios* (m/n = 4 and m/n = 10) at ~1000x smaller vertex counts,
and this module keeps the *machine* consistent with that scaling:

The performance shapes the paper reports hinge on the ratio between a
data structure's working set and the cache (CC's label array is ~800 MB
against a ~1.9 MB L2 — a 400:1 overflow).  A naively shrunk input would
fit entirely in the modeled cache and erase every locality effect, so
:func:`machine_for_input` scales the modeled cache size by the same
factor as the input, preserving the overflow ratio.  Everything else
(latencies, bandwidths, lock costs) is scale-invariant per-operation
cost and stays fixed.

``PAPER_*`` constants record the paper's experiment geometry so the
per-figure benchmarks can cite what they are scaled against.
"""

from __future__ import annotations

from ..runtime.machine import MachineConfig, hps_cluster, scaled_cache, sequential_machine, smp_node

__all__ = [
    "PAPER_NODES",
    "PAPER_THREADS_PER_NODE",
    "PAPER_N_LARGE",
    "PAPER_N_FIG3",
    "DEFAULT_BENCH_N",
    "machine_for_input",
    "cluster_for_input",
    "smp_for_input",
    "sequential_for_input",
]

#: The paper's cluster: 16 IBM P575+ nodes, 16 CPUs each.
PAPER_NODES = 16
PAPER_THREADS_PER_NODE = 16
#: Vertex count of the paper's large evaluation graphs (Figs. 4-10).
PAPER_N_LARGE = 100_000_000
#: Vertex count of the Fig. 3 coalescing experiment (10M vertices).
PAPER_N_FIG3 = 10_000_000
#: Default scaled vertex count used by the benchmarks.
DEFAULT_BENCH_N = 100_000


def machine_for_input(base: MachineConfig, n: int, paper_n: int = PAPER_N_LARGE) -> MachineConfig:
    """Calibrate ``base`` for a paper input shrunk to ``n`` vertices.

    Two scalings keep the scaled experiment in the same operating regime
    as the paper's full-size one (factor ``f = n / paper_n``):

    * cache size × f — preserving the working-set : cache overflow ratio
      that drives every locality effect;
    * per-call costs × f (coalesced message latencies, all-to-all setup,
      barriers) — these are paid a constant number of times per
      collective, while per-element work shrank by f; without this the
      scaled machine is latency-bound in a way the real one never was.

    Per-element costs (bandwidths, memory latency per access, fine-grained
    per-access messaging) are counted per element and scale with the
    input automatically, so they stay untouched.
    """
    if n <= 0 or paper_n <= 0:
        raise ValueError("vertex counts must be positive")
    f = n / paper_n
    return scaled_cache(base, f).with_(per_call_scale=f)


def cluster_for_input(
    n: int,
    nodes: int = PAPER_NODES,
    threads_per_node: int = PAPER_THREADS_PER_NODE,
    paper_n: int = PAPER_N_LARGE,
) -> MachineConfig:
    """An HPS cluster whose cache is calibrated for an ``n``-vertex input."""
    return machine_for_input(hps_cluster(nodes, threads_per_node), n, paper_n)


def smp_for_input(
    n: int, threads: int = PAPER_THREADS_PER_NODE, paper_n: int = PAPER_N_LARGE
) -> MachineConfig:
    """A single SMP node calibrated for an ``n``-vertex input."""
    return machine_for_input(smp_node(threads), n, paper_n)


def sequential_for_input(n: int, paper_n: int = PAPER_N_LARGE) -> MachineConfig:
    """A single thread calibrated for an ``n``-vertex input."""
    return machine_for_input(sequential_machine(), n, paper_n)
