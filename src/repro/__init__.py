"""repro — simulated-PGAS reproduction of
"Fast PGAS Implementation of Distributed Graph Algorithms" (Cong,
Almasi, Saraswat; SC 2010).

The library implements the paper's connected-components and
minimum-spanning-tree algorithms — naive UPC translation, SMP baselines,
sequential baselines, and the optimized collective rewrites — on a
simulated cluster of SMPs: the algorithms run for real on NumPy data
while a calibrated cost model charges per-thread virtual clocks, so the
paper's performance shapes (Figs. 2-10) are reproducible on one laptop.

Quickstart::

    import repro

    g = repro.random_graph(100_000, 400_000, seed=0)
    cc = repro.connected_components(g, machine=repro.hps_cluster(16, 8))
    print(cc.num_components, cc.info.sim_time_ms, "ms simulated")

    gw = repro.with_random_weights(g, seed=1)
    mst = repro.minimum_spanning_forest(gw, machine=repro.hps_cluster(16, 8))
    print(mst.total_weight, mst.num_edges)

Packages
--------
``repro.runtime``      simulated PGAS substrate (machines, clocks, costs)
``repro.collectives``  GetD / SetD / SetDMin (paper Algorithm 2)
``repro.scheduling``   access scheduling (paper Algorithm 1), cache models
``repro.graph``        generators, edge lists, distribution
``repro.cc``           connected-components implementations
``repro.mst``          minimum-spanning-forest implementations
``repro.core``         high-level API, optimization flags, analysis
``repro.analysis``     sanitizer suite: epoch race detector + static linter
``repro.faults``       fault plans/injection: loss, stragglers, crashes, flips
``repro.integrity``    silent-fault detection, verify-and-repair, soak harness
``repro.resilience``   permanent-loss survival: redundancy, epochs, recovery
``repro.tuning``       autotuner: probes → plan (impl × flags × t') → adapt
``repro.bench``        experiment harness used by ``benchmarks/``
"""

from .analysis import analyzed, run_lint
from .core import (
    CC_IMPLS,
    DEFAULT_BENCH_N,
    MST_IMPLS,
    CCResult,
    MSTResult,
    OptimizationFlags,
    SolveInfo,
    canonical_labels,
    cluster_for_input,
    connected_components,
    machine_for_input,
    minimum_spanning_forest,
    sequential_for_input,
    smp_for_input,
    spanning_forest,
)
from .errors import (
    CollectiveError,
    ConfigError,
    ConvergenceError,
    DistributionError,
    FaultError,
    GraphError,
    IntegrityError,
    NodeLoss,
    ReproError,
    ThreadCrash,
    UnrecoverableLossError,
    VerificationError,
)
from .faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    NicDegradation,
    NodeLossEvent,
    RetryPolicy,
)
from .integrity import IntegrityConfig, SoakConfig, run_soak
from .resilience import RedundancyConfig, ResilientSession
from .graph import (
    EdgeList,
    hybrid_graph,
    load_edgelist,
    powerlaw_graph,
    random_graph,
    save_edgelist,
    with_random_weights,
)
from .tuning import (
    MachineProfile,
    OnlineAdapter,
    PlanCache,
    TuningPlan,
    Workload,
    autotune,
    calibrate_profile,
)
from .runtime import (
    MachineConfig,
    PGASRuntime,
    PartitionedArray,
    SharedArray,
    profiled,
    render_phases,
    hps_cluster,
    infiniband_cluster,
    sequential_machine,
    smp_node,
)

__version__ = "1.0.0"

__all__ = [
    "CCResult",
    "CC_IMPLS",
    "CollectiveError",
    "ConfigError",
    "ConvergenceError",
    "CrashEvent",
    "DEFAULT_BENCH_N",
    "DistributionError",
    "EdgeList",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "GraphError",
    "IntegrityConfig",
    "IntegrityError",
    "MSTResult",
    "MST_IMPLS",
    "MachineConfig",
    "MachineProfile",
    "NicDegradation",
    "NodeLoss",
    "NodeLossEvent",
    "OnlineAdapter",
    "OptimizationFlags",
    "PGASRuntime",
    "PartitionedArray",
    "PlanCache",
    "RedundancyConfig",
    "ReproError",
    "ResilientSession",
    "RetryPolicy",
    "SharedArray",
    "SoakConfig",
    "SolveInfo",
    "ThreadCrash",
    "TuningPlan",
    "UnrecoverableLossError",
    "VerificationError",
    "Workload",
    "__version__",
    "analyzed",
    "autotune",
    "calibrate_profile",
    "canonical_labels",
    "cluster_for_input",
    "connected_components",
    "hps_cluster",
    "hybrid_graph",
    "infiniband_cluster",
    "load_edgelist",
    "machine_for_input",
    "minimum_spanning_forest",
    "powerlaw_graph",
    "profiled",
    "random_graph",
    "render_phases",
    "run_lint",
    "run_soak",
    "save_edgelist",
    "sequential_for_input",
    "sequential_machine",
    "smp_for_input",
    "smp_node",
    "spanning_forest",
    "with_random_weights",
]
