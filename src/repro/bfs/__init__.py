"""Level-synchronous breadth-first search.

The paper's Section I cites Yoo et al.'s BlueGene/L BFS as the only
prior high-performance distributed graph result — and points out its
limitation: "the parallel BFS implementation has a lower bound of O(d)
(d is the diameter of the input graph) for the running time regardless
of the number of processors.  Many poly-log time graph algorithms ...
exhibit different algorithmic behavior."

This package implements BFS in the library's three styles so the
contrast is measurable: the collective version needs one communication
round per *level* (diameter-bound), while the collective CC needs
O(log n) grafting iterations however long the paths are —
``benchmarks/bench_related_bfs.py`` regenerates the comparison.
"""

from .solvers import solve_bfs_collective, solve_bfs_naive_upc, solve_bfs_sequential

__all__ = ["solve_bfs_collective", "solve_bfs_naive_upc", "solve_bfs_sequential"]
