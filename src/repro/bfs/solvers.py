"""BFS solvers: collective, naive-UPC, and sequential.

Vertex-centric, level-synchronous: each thread owns a blocked slice of
vertices and their CSR adjacency rows.  Per level, owners enumerate the
neighbors of their frontier vertices, and the discovered targets are
written into the distance array with a priority (minimum) write —
``SetD`` in the collective version, per-element blocking writes in the
naive one.

Unreached vertices keep distance :data:`UNREACHED`.
"""

from __future__ import annotations

import time

import numpy as np

from ..collectives.setd import setd
from ..core.optimizations import OptimizationFlags
from ..core.results import SolveInfo
from ..errors import GraphError
from ..graph.csr import CSRAdjacency
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster, sequential_machine
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from ..mst.collective import partition_by_owner

__all__ = ["UNREACHED", "solve_bfs_collective", "solve_bfs_naive_upc", "solve_bfs_sequential"]

#: Distance assigned to vertices the source cannot reach.
UNREACHED = np.int64(np.iinfo(np.int64).max)


def _check_source(graph: EdgeList, source: int) -> None:
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} out of range for n={graph.n}")


def _frontier_partition(dist, level: int, shared) -> PartitionedArray:
    """Current frontier vertices, partitioned by owning thread."""
    frontier = np.flatnonzero(dist == level)
    return partition_by_owner(frontier, shared)


def _solve_bfs_level_synchronous(
    graph: EdgeList,
    source: int,
    machine: MachineConfig,
    style: str,
    opts: OptimizationFlags,
    tprime: int,
) -> tuple[np.ndarray, SolveInfo]:
    _check_source(graph, source)
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    n = graph.n
    adj = CSRAdjacency.from_edgelist(graph)

    dist_init = np.full(n, UNREACHED, dtype=np.int64)
    dist_init[source] = 0
    dist = rt.shared_array(dist_init)
    # Building the CSR costs two streamed passes over 2m edge records.
    rt.local_stream(np.full(rt.s, 4.0 * graph.m / rt.s), Category.WORK)

    level = 0
    while True:
        frontier = _frontier_partition(dist.data, level, dist)
        any_frontier = frontier.sizes() > 0
        if not rt.allreduce_flag(any_frontier):
            break
        rt.counters.add(iterations=1)
        # Owners enumerate their frontier vertices' adjacency rows.
        targets_flat = adj.neighbors_of(frontier.data)
        per_thread_neighbors = np.zeros(rt.s, dtype=np.int64)
        for i in range(rt.s):
            per_thread_neighbors[i] = int(adj.degree(frontier.segment(i)).sum())
        rt.local_stream(per_thread_neighbors.astype(np.float64), Category.WORK)
        offsets = np.zeros(rt.s + 1, dtype=np.int64)
        np.cumsum(per_thread_neighbors, out=offsets[1:])
        targets = PartitionedArray(targets_flat, offsets)
        values = np.full(targets.total, level + 1, dtype=np.int64)
        # Style is fixed per run, so every simulated thread takes the
        # same branch and the sync counts cannot diverge across threads.
        # repro: waive[CM03] style uniform across threads
        if style == "collective":
            setd(rt, dist, targets, values, opts, tprime=tprime)
        else:
            rt.fine_grained_write(dist, targets, values, combine="min")
        level += 1
        if level > n:
            raise GraphError("BFS exceeded n levels — adjacency is corrupt")

    labels = dist.data.copy()
    info = SolveInfo(
        machine, f"bfs-{style}", rt.elapsed, time.perf_counter() - wall, level, rt.trace
    )
    return labels, info


def solve_bfs_collective(
    graph: EdgeList,
    source: int = 0,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
) -> tuple[np.ndarray, SolveInfo]:
    """Level-synchronous BFS with coalesced SetD writes.

    Returns ``(distances, info)``; one collective round per level, so
    ``info.iterations`` equals the source's eccentricity + 1 — the O(d)
    bound the paper contrasts with its poly-log CC.
    """
    machine = machine if machine is not None else hps_cluster()
    # BFS distances can legitimately update vertex 0 (the source default
    # is 0 but any vertex may be relaxed); never drop hot writes.
    return _solve_bfs_level_synchronous(
        graph, source, machine, "collective", opts.with_(offload=False), tprime
    )


def solve_bfs_naive_upc(
    graph: EdgeList,
    source: int = 0,
    machine: MachineConfig | None = None,
) -> tuple[np.ndarray, SolveInfo]:
    """Literal translation: one blocking remote write per discovered edge."""
    machine = machine if machine is not None else hps_cluster()
    return _solve_bfs_level_synchronous(
        graph, source, machine, "naive", OptimizationFlags.none(), 1
    )


def solve_bfs_sequential(
    graph: EdgeList,
    source: int = 0,
    machine: MachineConfig | None = None,
) -> tuple[np.ndarray, SolveInfo]:
    """Queue-based sequential BFS (cost-modeled; scipy-executed)."""
    from scipy.sparse import csgraph

    _check_source(graph, source)
    machine = machine if machine is not None else sequential_machine()
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    n, m = graph.n, graph.m
    # One pass over the adjacency plus one irregular visit per vertex.
    rt.local_stream(float(2 * m + n), Category.WORK)
    rt.local_random_access(float(2 * m), n * 8.0, Category.IRREGULAR)
    rt.counters.add(iterations=1)

    if m:
        dist_f = csgraph.shortest_path(
            graph.to_scipy() != 0, method="D", unweighted=True, indices=source
        )
        dist = np.full(n, UNREACHED, dtype=np.int64)
        reached = ~np.isinf(dist_f)
        dist[reached] = dist_f[reached].astype(np.int64)
    else:
        dist = np.full(n, UNREACHED, dtype=np.int64)
        dist[source] = 0
    info = SolveInfo(machine, "bfs-seq", rt.elapsed, time.perf_counter() - wall, 1, rt.trace)
    return dist, info
