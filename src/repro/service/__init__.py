"""Resilient multi-tenant graph-analytics service.

A long-running JSON API (stdlib :class:`http.server.ThreadingHTTPServer`
— no new dependencies) in front of the existing CC/MST/BFS solvers,
built around a robustness core rather than a routing core:

* **admission control** — a bounded priority queue
  (:class:`~repro.service.queue.AdmissionQueue`) plus per-tenant
  token-bucket quotas (:mod:`repro.service.quotas`); rejected work gets
  ``429`` with a ``Retry-After`` hint, never an unbounded backlog;
* **deadlines** — per-job deadlines with *cooperative cancellation*
  threaded through the simulator's synchronization points
  (:mod:`repro.service.deadlines`);
* **failure containment** — retry with exponential backoff and a
  per-tenant circuit breaker for jobs that keep failing under injected
  faults;
* **graceful degradation** — under load the service sheds the
  lowest-priority work first and stops paying for tuning probe solves,
  falling back to cached :class:`~repro.tuning.PlanCache` plans
  (:mod:`repro.service.degradation`);
* **crash safety** — an append-only job journal
  (:mod:`repro.service.journal`); a restarted server recovers every
  in-flight job (resumed or cleanly failed with a retriable status);
* **a verified-result contract** — every served answer carries its
  networkx-verify status and plan provenance; a wrong result is never
  served.

``python -m repro serve`` runs the server; ``python -m repro loadtest``
drives it with an open-loop arrival process and writes
``BENCH_service.json``.  See ``docs/service.md``.
"""

from .degradation import DegradationPolicy, ServiceMode
from .deadlines import BackoffPolicy, CancelToken, CircuitBreaker, cancel_scope
from .jobs import Job, JobSpec, JobState, PRIORITIES
from .journal import JobJournal
from .loadtest import LoadtestConfig, run_loadtest
from .queue import AdmissionQueue
from .quotas import QuotaTable, TokenBucket
from .server import GraphService, ServiceConfig, ServiceServer

__all__ = [
    "AdmissionQueue",
    "BackoffPolicy",
    "CancelToken",
    "CircuitBreaker",
    "DegradationPolicy",
    "GraphService",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobState",
    "LoadtestConfig",
    "PRIORITIES",
    "QuotaTable",
    "ServiceConfig",
    "ServiceMode",
    "ServiceServer",
    "TokenBucket",
    "cancel_scope",
    "run_loadtest",
]
