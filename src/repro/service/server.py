"""The service core and its stdlib HTTP front end.

Layering follows DART-MPI's runtime-over-transport split:
:class:`GraphService` is the transport-free core — admission control,
quotas, breakers, journal, executor — fully drivable from tests without
a socket; :class:`ServiceServer` is the thin
:class:`~http.server.ThreadingHTTPServer` adapter that maps HTTP verbs
onto it.

API (all JSON):

========================  =====================================================
``POST /submit``          202 ``{"job_id": ...}`` | 400 bad request |
                          429 over quota / queue full / overload-shed
                          (with ``Retry-After``) | 503 circuit breaker open
                          (with ``Retry-After``)
``GET /status/<job>``     job lifecycle record; 404 unknown id
``GET /result/<job>``     the verified result; 404 unknown, 409 not finished,
                          410 for terminal-but-unsuccessful (body says why)
``GET /healthz``          200 always while the process lives (crash-only
                          design: liveness is the only health claim)
``GET /metrics``          counters, latency percentiles, queue + mode,
                          per-tenant breaker states, degradation decisions
========================  =====================================================
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..errors import UsageError
from .deadlines import BackoffPolicy, CircuitBreaker
from .degradation import DegradationPolicy, ServiceMode
from .executor import JobExecutor, ServiceMetrics, validate_spec_impl
from .jobs import Job, JobSpec, JobState, TERMINAL_STATES
from .journal import JobJournal, replay_journal
from .queue import AdmissionQueue
from .quotas import QuotaTable

__all__ = ["ServiceConfig", "GraphService", "ServiceServer"]


@dataclass
class ServiceConfig:
    """Everything the operator can turn."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    queue_capacity: int = 64
    quota_rate: float = 10.0           # tokens/second per tenant
    quota_burst: float = 20.0
    breaker_failures: int = 4
    breaker_reset_s: float = 5.0
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    degraded_at: float = 0.5
    overload_at: float = 0.85
    journal_path: Optional[str] = None  # None disables journaling
    default_deadline_s: Optional[float] = 30.0
    verify: bool = True
    journal_fsync: bool = True


class _NullJournal:
    """Journal-shaped no-op for journal-less (ephemeral) servers."""

    path = None

    def record(self, event, job, **fields) -> None:
        pass

    def close(self) -> None:
        pass


class GraphService:
    """The robustness core: everything but the HTTP socket."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.quotas = QuotaTable(self.config.quota_rate, self.config.quota_burst)
        self.policy = DegradationPolicy(self.config.degraded_at, self.config.overload_at)
        if self.config.journal_path:
            self.journal = JobJournal(self.config.journal_path, fsync=self.config.journal_fsync)
        else:
            self.journal = _NullJournal()
        self.jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._terminal_history: Dict[str, dict] = {}
        self.executor = JobExecutor(
            queue=self.queue,
            journal=self.journal,
            metrics=self.metrics,
            policy=self.policy,
            workers=self.config.workers,
            backoff=self.config.backoff,
            breaker_factory=lambda: CircuitBreaker(
                self.config.breaker_failures, self.config.breaker_reset_s
            ),
            verify=self.config.verify,
        )
        self.started_at = time.time()
        self.recovered_jobs = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._recover()
        self.executor.start()

    def stop(self) -> None:
        self.executor.stop()
        self.journal.close()

    def _recover(self) -> None:
        """Replay the journal: keep terminal history, re-enqueue orphans."""
        if self.journal.path is None:
            return
        terminal, orphans = replay_journal(self.journal.path)
        self._terminal_history = terminal
        for job in orphans:
            self.journal.record("recovered", job)
            with self._jobs_lock:
                self.jobs[job.job_id] = job
            outcome, victim = self.queue.offer(job)
            if outcome != "accepted":
                # A full queue on recovery still must not lose the job:
                # it terminates cleanly as retriable, and stays queryable.
                job.transition(
                    JobState.FAILED, retriable=True,
                    error="recovery: queue full, resubmit", finished_at=time.time(),
                )
                self.journal.record("failed", job, retriable=True, error=job.error)
            else:
                self.recovered_jobs += 1
                if victim is not None:
                    self.journal.record("shed", victim, retriable=True, error=victim.error)

    # -- request handling ----------------------------------------------------

    def submit(self, payload: dict) -> Tuple[int, dict, Dict[str, str]]:
        """Admission pipeline; returns (http_status, body, headers)."""
        self.metrics.count("submitted")
        try:
            spec = JobSpec.from_payload(payload)
            validate_spec_impl(spec)
        except UsageError as err:
            self.metrics.count("rejected_bad_request")
            return 400, {"error": str(err)}, {}
        if spec.deadline_s is None and self.config.default_deadline_s is not None:
            spec = JobSpec(**{**spec.to_dict(), "deadline_s": self.config.default_deadline_s})

        # 1. circuit breaker: a tenant whose jobs keep dying fails fast.
        breaker = self.executor.breaker_for(spec.tenant)
        retry_after = breaker.allow()
        if retry_after > 0:
            self.metrics.count("rejected_breaker")
            return 503, {
                "error": f"circuit breaker open for tenant {spec.tenant!r}",
                "retry_after_s": retry_after,
            }, {"Retry-After": f"{max(1, round(retry_after))}"}

        # 2. per-tenant quota.
        retry_after = self.quotas.try_acquire(spec.tenant)
        if retry_after > 0:
            self.metrics.count("rejected_quota")
            return 429, {
                "error": f"tenant {spec.tenant!r} over quota",
                "retry_after_s": retry_after,
            }, {"Retry-After": f"{max(1, round(retry_after))}"}

        # 3. overload shedding at the door: lowest priority first.
        mode = self.policy.mode(self.queue.occupancy)
        if not self.policy.admits(mode, spec.priority_rank):
            self.metrics.count("rejected_overload")
            return 429, {
                "error": "service overloaded; low-priority work is being shed",
                "mode": mode,
                "retry_after_s": 1.0,
            }, {"Retry-After": "1"}

        # 4. bounded queue (may shed a lower-priority victim).
        job = Job(spec=spec)
        with self._jobs_lock:
            self.jobs[job.job_id] = job
        outcome, victim = self.queue.offer(job)
        if outcome != "accepted":
            with self._jobs_lock:
                self.jobs.pop(job.job_id, None)
            self.metrics.count("rejected_queue_full")
            retry_after = max(1.0, len(self.queue) * 0.1)
            return 429, {
                "error": "queue full",
                "retry_after_s": retry_after,
            }, {"Retry-After": f"{max(1, round(retry_after))}"}
        self.journal.record("submit", job)
        if victim is not None:
            self.metrics.count("shed")
            self.journal.record("shed", victim, retriable=True, error=victim.error)
        self.metrics.count("accepted")
        return 202, {
            "job_id": job.job_id,
            "state": job.state,
            "mode": mode,
        }, {}

    def _lookup(self, job_id: str) -> "Tuple[Optional[Job], Optional[dict]]":
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is not None:
            return job, None
        return None, self._terminal_history.get(job_id)

    def status(self, job_id: str) -> Tuple[int, dict, Dict[str, str]]:
        job, historic = self._lookup(job_id)
        if job is not None:
            return 200, job.status_dict(), {}
        if historic is not None:
            body = {k: v for k, v in historic.items() if k not in ("result", "spec")}
            body["recovered_from_journal"] = True
            return 200, body, {}
        return 404, {"error": f"unknown job {job_id!r}"}, {}

    def result(self, job_id: str) -> Tuple[int, dict, Dict[str, str]]:
        job, historic = self._lookup(job_id)
        if job is None and historic is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        if job is not None:
            state = job.state
            result = job.result_dict()
            status = job.status_dict()
        else:
            state = historic["state"]
            result = historic.get("result")
            status = {k: v for k, v in historic.items() if k not in ("result", "spec")}
        if state == JobState.DONE and result is not None:
            return 200, {"job_id": job_id, "state": state, "result": result}, {}
        if state in TERMINAL_STATES:
            return 410, {"job_id": job_id, "state": state, "status": status}, {}
        return 409, {
            "job_id": job_id, "state": state,
            "error": "job not finished; poll /status",
        }, {}

    def healthz(self) -> Tuple[int, dict, Dict[str, str]]:
        return 200, {
            "ok": True,
            "uptime_s": time.time() - self.started_at,
            "mode": self.policy.mode(self.queue.occupancy),
        }, {}

    def metrics_view(self) -> Tuple[int, dict, Dict[str, str]]:
        snap = self.metrics.snapshot()
        snap.update({
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.capacity,
                "occupancy": self.queue.occupancy,
                "shed_total": self.queue.shed_total,
                "rejected_total": self.queue.rejected_total,
            },
            "mode": self.policy.mode(self.queue.occupancy),
            "degradation": self.policy.snapshot(),
            "breakers": {
                tenant: breaker.state
                for tenant, breaker in sorted(self.executor.breakers.items())
            },
            "recovered_jobs": self.recovered_jobs,
        })
        return 200, snap, {}


class _Handler(BaseHTTPRequestHandler):
    service: GraphService  # set on the subclass by ServiceServer
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # quiet by default
        pass

    def _reply(self, status: int, body: dict, headers: Dict[str, str]) -> None:
        data = json.dumps(body, sort_keys=True, default=float).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def do_POST(self) -> None:
        if self.path != "/submit":
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"}, {})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError):
            self._reply(400, {"error": "request body must be valid JSON"}, {})
            return
        self._reply(*self.service.submit(payload))

    def do_GET(self) -> None:
        path = self.path.rstrip("/")
        if path == "/healthz":
            self._reply(*self.service.healthz())
        elif path == "/metrics":
            self._reply(*self.service.metrics_view())
        elif path.startswith("/status/"):
            self._reply(*self.service.status(path[len("/status/"):]))
        elif path.startswith("/result/"):
            self._reply(*self.service.result(path[len("/result/"):]))
        else:
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"}, {})


class ServiceServer:
    """HTTP adapter: bind, serve (optionally in the background), stop."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service = GraphService(self.config)
        handler = type("BoundHandler", (_Handler,), {"service": self.service})
        try:
            self.httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), handler
            )
        except OSError as err:
            raise UsageError(
                f"cannot bind {self.config.host}:{self.config.port}: {err.strerror or err}"
                " (is another server already running on that port?)"
            ) from None
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start_background(self) -> "ServiceServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.service.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        with contextlib.suppress(Exception):
            self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def crash(self) -> None:
        """Simulated ``kill -9``: the socket, workers, and journal all
        vanish at once with no draining — whatever was queued or
        running is left for the next incarnation's journal recovery.
        (In-process stand-in for the CI job's real ``kill -9``.)"""
        self.service.executor.abort()
        with contextlib.suppress(Exception):
            self.httpd.shutdown()
        self.httpd.server_close()
        self.service.journal.close()
