"""Deadlines, cooperative cancellation, backoff, and circuit breaking.

**Cancellation** is cooperative: a worker thread enters a
:func:`cancel_scope` around the solve, which exposes its
:class:`CancelToken` through a thread-local that the simulator polls at
every synchronization point (:func:`repro.runtime.runtime.set_sync_poll`
— observation-only, so modeled times are bit-identical with the hook on
or off).  When the token's deadline passes — or someone calls
:meth:`CancelToken.cancel` — the next barrier raises
:class:`~repro.errors.JobCancelled`, which unwinds cleanly out of the
solver (it is deliberately not a ``FaultError``, so the checkpoint /
repair machinery never absorbs it).

**Backoff** is deterministic exponential: ``base * factor**attempt``,
capped, with optional *seeded* jitter.  Plain exponential backoff
synchronizes retry storms — every job that failed in the same breaker
window retries on the same schedule.  The jitter here is a deterministic
hash of ``(key, attempt)`` (the key is the job id), so two jobs' retry
schedules desynchronize while any single job replays byte-identically:
determinism keeps tests exact, the hash keeps the herd thin.

**Circuit breaker** is per-tenant, counting *consecutive* failures:
``closed -> open`` after ``failure_threshold`` failures, ``open ->
half-open`` after ``reset_after`` seconds (one trial request), ``half-
open -> closed`` on success / back to ``open`` on failure.  An open
breaker fails the tenant's submissions fast with a Retry-After instead
of burning worker time on jobs that keep dying under injected faults.
"""

from __future__ import annotations

import contextlib
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import JobCancelled
from ..runtime.runtime import set_sync_poll

__all__ = ["CancelToken", "cancel_scope", "BackoffPolicy", "CircuitBreaker"]


class CancelToken:
    """Cancellation state for one job attempt."""

    def __init__(
        self,
        job_id: str,
        deadline_at: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.job_id = job_id
        self.deadline_at = deadline_at
        self._clock = clock
        self._cancelled = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def check(self) -> None:
        """Raise :class:`JobCancelled` if cancelled or past deadline."""
        if self._cancelled.is_set():
            raise JobCancelled(self.job_id, self.reason or "cancelled")
        if self.deadline_at is not None and self._clock() > self.deadline_at:
            self.reason = "deadline exceeded"
            self._cancelled.set()
            raise JobCancelled(self.job_id, self.reason)


_ACTIVE = threading.local()
_install_lock = threading.Lock()
_installed = False


def _poll() -> None:
    token = getattr(_ACTIVE, "token", None)
    if token is not None:
        token.check()


def _ensure_poll_installed() -> None:
    """Install the global sync-point poll once per process.

    Left installed for the process lifetime: with no active token the
    poll is a thread-local ``getattr`` — cheap, charge-free, and inert
    for non-service solves.
    """
    global _installed
    with _install_lock:
        if not _installed:
            set_sync_poll(_poll)
            _installed = True


@contextlib.contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Expose ``token`` to the simulator for the duration of a solve.

    Scopes nest per-thread (the previous token is restored on exit);
    each worker thread sees only its own job's token.
    """
    _ensure_poll_installed()
    previous = getattr(_ACTIVE, "token", None)
    _ACTIVE.token = token
    try:
        token.check()  # fail fast if already expired
        yield token
    finally:
        _ACTIVE.token = previous


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic exponential backoff for job retries.

    With ``jitter > 0`` the delay for ``(key, attempt)`` is scaled by a
    factor drawn deterministically from ``crc32(f"{key}:{attempt}")`` in
    ``[1 - jitter, 1]`` — distinct keys spread out, identical inputs
    replay to the exact same schedule.  ``jitter=0`` (the default) and
    the keyless form are byte-identical to plain capped exponential.
    """

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 2.0
    max_attempts: int = 3
    #: Fraction of the delay the seeded jitter may shave off, in [0, 1].
    jitter: float = 0.0

    def delay(self, attempt: int, key: str = "") -> float:
        """Sleep before retry number ``attempt`` (0-based), jittered
        deterministically by ``key`` (typically the job id)."""
        base = min(self.cap_s, self.base_s * self.factor ** attempt)
        if self.jitter <= 0.0:
            return base
        u = zlib.crc32(f"{key}:{attempt}".encode("utf-8")) / 2**32
        return base * (1.0 - self.jitter * u)


class CircuitBreaker:
    """Per-tenant consecutive-failure circuit breaker."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 4,
        reset_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._lock = threading.Lock()
        self.opens_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == self.OPEN and self._clock() - self._opened_at >= self.reset_after_s:
            self._state = self.HALF_OPEN

    def allow(self) -> float:
        """0.0 if a request may proceed, else seconds until retry.

        In half-open state exactly one trial is admitted (the state
        drops back to OPEN pending its outcome, so concurrent requests
        keep failing fast until the trial reports).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return 0.0
            if self._state == self.HALF_OPEN:
                # Admit one trial; pessimistically re-open until it reports.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return 0.0
            return max(0.0, self.reset_after_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold and self._state != self.OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.opens_total += 1
