"""Graceful-degradation policy: what the service stops doing under load.

The queue's fill fraction drives a three-mode ladder::

    normal    occupancy <  degraded_at   full service
    degraded  occupancy >= degraded_at   no tuning probe solves: jobs
                                         asking for "auto" use cached
                                         plans (exact hit, then nearest
                                         graph-fingerprint neighbour),
                                         else the analytic-only plan
    overload  occupancy >= overload_at   additionally, *low*-priority
                                         submissions are refused at
                                         admission (429 + Retry-After)
                                         and queue-full shedding evicts
                                         lowest-priority work first

The ladder mirrors the paper's claim at the service level: under
pressure the system sheds precision (tuning quality) and the least
important work first, and keeps serving verified answers — it does not
collapse.  Every decision is counted so ``/metrics`` shows exactly what
degraded and how often.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["ServiceMode", "DegradationPolicy"]


class ServiceMode:
    NORMAL = "normal"
    DEGRADED = "degraded"
    OVERLOAD = "overload"


@dataclass
class DegradationPolicy:
    """Pure occupancy -> mode mapping plus decision counters."""

    degraded_at: float = 0.5
    overload_at: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.degraded_at <= self.overload_at <= 1.0:
            raise ValueError(
                "degradation thresholds must satisfy 0 < degraded_at <= overload_at <= 1:"
                f" got {self.degraded_at}, {self.overload_at}"
            )
        self._lock = threading.Lock()
        self.decisions = {
            "plan_probe_skipped": 0,
            "plan_nearest_reused": 0,
            "low_priority_refused": 0,
        }

    def mode(self, occupancy: float) -> str:
        if occupancy >= self.overload_at:
            return ServiceMode.OVERLOAD
        if occupancy >= self.degraded_at:
            return ServiceMode.DEGRADED
        return ServiceMode.NORMAL

    def admits(self, mode: str, priority_rank: int) -> bool:
        """Admission filter: overload refuses the lowest priority class
        outright (shed at the door, before it can displace anything)."""
        if mode == ServiceMode.OVERLOAD and priority_rank == 0:
            self.count("low_priority_refused")
            return False
        return True

    def allow_probes(self, mode: str) -> bool:
        """Probe solves (the expensive tuning stage) only run in normal
        mode; degraded plans come from the cache or the analytic model."""
        return mode == ServiceMode.NORMAL

    def count(self, decision: str) -> None:
        with self._lock:
            self.decisions[decision] = self.decisions.get(decision, 0) + 1

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self.decisions)
