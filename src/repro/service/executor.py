"""Job execution: worker pool, retries, verification, plan provenance.

Each worker thread pulls from the :class:`~repro.service.queue.
AdmissionQueue` and drives one job at a time through:

1. **deadline gate** — a job whose deadline expired while queued is
   cancelled (retriable) without burning a solve on it;
2. **solve with cooperative cancellation** — the attempt runs inside a
   :func:`~repro.service.deadlines.cancel_scope`, so the simulator
   aborts at the next sync point once the deadline passes mid-solve;
3. **retry with exponential backoff** — attempts that die to a
   :class:`~repro.errors.ReproError` (exhausted retry budgets under
   injected faults, integrity gives-up, ...) are retried up to the
   backoff policy's budget, never sleeping past the deadline;
4. **verification** — the answer is checked against the networkx
   oracle before it is served; a wrong answer is *never* served — the
   job fails (retriable) instead, and the failure feeds the tenant's
   circuit breaker like any other;
5. **journal + metrics** — every transition is journaled before it is
   visible, and latency/outcome counters feed ``/metrics``.

Graphs are cached per fingerprint (``kind × n × m × seed``) so repeated
queries against the same input skip regeneration; tuning plans resolve
through the :class:`~repro.tuning.PlanCache` with provenance recorded
in the result (``cache`` / ``tuned`` / ``nearest-cache`` / ``analytic``
/ ``explicit``).
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Dict, Optional, Tuple

from ..errors import JobCancelled, ReproError, UsageError
from .deadlines import BackoffPolicy, CancelToken, CircuitBreaker, cancel_scope
from .degradation import ServiceMode
from .jobs import Job, JobSpec, JobState

__all__ = ["JobExecutor", "ServiceMetrics", "validate_spec_impl", "parse_service_machine"]


def parse_service_machine(spec_text: str, n: int):
    """``NODESxTHREADS`` / ``smp`` / ``seq`` -> calibrated MachineConfig."""
    from ..core import machine_for_input
    from ..runtime import hps_cluster, sequential_machine, smp_node

    if spec_text == "seq":
        base = sequential_machine()
    elif spec_text == "smp":
        base = smp_node(16)
    else:
        try:
            nodes_s, threads_s = spec_text.lower().split("x")
            base = hps_cluster(int(nodes_s), int(threads_s))
        except (ValueError, ReproError):
            raise UsageError(
                f"field 'machine' must be NODESxTHREADS (e.g. 4x2), 'smp' or 'seq':"
                f" got {spec_text!r}"
            ) from None
    return machine_for_input(base, n)


def validate_spec_impl(spec: JobSpec) -> None:
    """Submit-time impl/variant validation so bad requests 400 instead
    of failing asynchronously after sitting in the queue.  Impl names
    and their fault/integrity capabilities come straight from the
    :mod:`repro.algorithms` registry — a newly registered variant is
    accepted here with zero service changes."""
    from ..algorithms import get_algorithm, lt_variant_names
    from ..core import CC_IMPLS, MST_IMPLS

    if spec.variant is not None and spec.variant not in lt_variant_names():
        raise UsageError(
            f"field 'variant' must be one of {lt_variant_names()}: got {spec.variant!r}"
        )
    impl = spec.effective_impl
    table = {"cc": CC_IMPLS, "mst": MST_IMPLS, "bfs": ("collective", "naive", "sequential")}
    allowed = table[spec.algo]
    if impl not in allowed:
        raise UsageError(
            f"field 'impl' must be one of {allowed} for algo {spec.algo!r}: got {impl!r}"
        )
    if spec.algo == "bfs" and ("auto" in (impl, spec.opts) or spec.tprime == "auto"):
        raise UsageError("auto tuning is only supported for cc/mst jobs")
    if spec.algo in ("cc", "mst") and impl != "auto":
        algorithm = get_algorithm(spec.algo, impl)
        if spec.has_faults and not algorithm.supports_faults:
            supported = tuple(
                name for name in allowed
                if name == "auto" or get_algorithm(spec.algo, name).supports_faults
            )
            raise UsageError(
                f"fault injection is not supported for impl {impl!r};"
                f" use one of {supported}"
            )
        if spec.integrity and not algorithm.supports_integrity:
            supported = tuple(
                name for name in allowed
                if name == "auto" or get_algorithm(spec.algo, name).supports_integrity
            )
            raise UsageError(
                f"integrity protection is not supported for impl {impl!r};"
                f" use one of {supported}"
            )
    # Parse-check opts eagerly too (same 400-at-the-door rationale).
    _parse_opts(spec.opts)


def _parse_opts(text: str):
    from ..core import OptimizationFlags

    if text == "auto":
        return "auto"
    if text == "all":
        return OptimizationFlags.all()
    if text == "none":
        return OptimizationFlags.none()
    try:
        return OptimizationFlags.only(*[s.strip() for s in text.split(",") if s.strip()])
    except ReproError as err:
        raise UsageError(f"field 'opts' is invalid: {err}") from None


class ServiceMetrics:
    """Lock-protected counters + a bounded latency reservoir."""

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = collections.defaultdict(int)
        self._latencies = collections.deque(maxlen=reservoir)

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] += amount

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    @staticmethod
    def _percentile(values, q: float) -> Optional[float]:
        if not values:
            return None
        values = sorted(values)
        idx = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
        return values[idx]

    def snapshot(self) -> dict:
        with self._lock:
            lat = list(self._latencies)
            counters = dict(self.counters)
        return {
            "counters": counters,
            "latency": {
                "count": len(lat),
                "p50_s": self._percentile(lat, 0.50),
                "p99_s": self._percentile(lat, 0.99),
            },
        }


class _GraphCache:
    """Small LRU of generated inputs keyed by graph fingerprint."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "collections.OrderedDict[str, tuple]" = collections.OrderedDict()

    def get(self, spec: JobSpec):
        """(graph, weighted_graph_or_None) for the spec's fingerprint."""
        from ..graph import hybrid_graph, powerlaw_graph, random_graph, with_random_weights

        key = spec.graph_fingerprint()
        weighted = spec.algo == "mst"
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                g, gw = entry
                if not weighted or gw is not None:
                    return g, gw
        builders = {"random": random_graph, "hybrid": hybrid_graph, "powerlaw": powerlaw_graph}
        g = builders[spec.kind](spec.n, spec.m, seed=spec.seed)
        gw = with_random_weights(g, seed=spec.seed + 1) if weighted else None
        with self._lock:
            self._entries[key] = (g, gw)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return g, gw


class JobExecutor:
    """Runs jobs on a pool of worker threads.

    Collaborators are injected so the executor is unit-testable without
    a socket: the queue it drains, the journal it appends to, the
    degradation policy + plan cache for tuning decisions, and the
    per-tenant circuit breakers it feeds.
    """

    def __init__(
        self,
        queue,
        journal,
        metrics: ServiceMetrics,
        policy,
        plan_cache=None,
        workers: int = 2,
        backoff: Optional[BackoffPolicy] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
        breaker_factory=None,
        verify: bool = True,
    ) -> None:
        self.queue = queue
        self.journal = journal
        self.metrics = metrics
        self.policy = policy
        self.plan_cache = plan_cache
        self.workers = max(1, int(workers))
        self.backoff = backoff or BackoffPolicy()
        self.breakers = breakers if breakers is not None else {}
        self._breaker_factory = breaker_factory or CircuitBreaker
        self._breaker_lock = threading.Lock()
        self.verify = verify
        self.graphs = _GraphCache()
        self._machines: Dict[Tuple[str, int], object] = {}
        self._machine_lock = threading.Lock()
        self._threads: list = []
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for i in range(self.workers):
            t = threading.Thread(target=self._loop, name=f"repro-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 5.0) -> None:
        self._stopping.set()
        self.queue.close()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()

    def abort(self) -> None:
        """Stop pulling work immediately, no drain, no join — the
        executor half of a simulated ``kill -9``."""
        self._stopping.set()

    def _loop(self) -> None:
        while not self._stopping.is_set():
            job = self.queue.take(timeout=0.1)
            if job is None or self._stopping.is_set():
                continue  # a job taken during shutdown stays journaled
                # as in-flight and is recovered by the next incarnation
            try:
                self.execute(job)
            except Exception as err:  # never kill a worker thread
                job.transition(
                    JobState.FAILED, retriable=False,
                    error=f"internal: {type(err).__name__}: {err}",
                    finished_at=time.time(),
                )
                self.journal.record("failed", job, retriable=False, error=job.error)
                self.metrics.count("failed")

    def breaker_for(self, tenant: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self.breakers.get(tenant)
            if breaker is None:
                breaker = self._breaker_factory()
                self.breakers[tenant] = breaker
            return breaker

    def _machine_for(self, spec: JobSpec):
        key = (spec.machine, spec.n)
        with self._machine_lock:
            machine = self._machines.get(key)
        if machine is None:
            machine = parse_service_machine(spec.machine, spec.n)
            with self._machine_lock:
                self._machines[key] = machine
        return machine

    # -- planning ------------------------------------------------------------

    def _resolve_plan(self, spec: JobSpec, machine, mode: str) -> tuple:
        """(impl, opts, tprime, provenance-dict) for this job."""
        explicit_opts = _parse_opts(spec.opts)
        impl_req = spec.effective_impl
        wants_auto = impl_req == "auto" or spec.opts == "auto" or spec.tprime == "auto"
        if not wants_auto:
            return impl_req, explicit_opts, spec.tprime, {
                "source": "explicit", "impl": impl_req, "opts": spec.opts,
                "tprime": spec.tprime,
            }
        from ..tuning import PlanCache, Workload, autotune
        from ..tuning.planner import build_plan, parse_opts_key

        cache = self.plan_cache if self.plan_cache is not None else PlanCache()
        self.plan_cache = cache
        workload = Workload(kind=spec.algo, n=spec.n, m=spec.m, graph_kind=spec.kind)
        plan = cache.get(machine, workload)
        source = "cache"
        if plan is None:
            if self.policy.allow_probes(mode):
                plan = autotune(workload, machine, cache=cache)
                source = "tuned"
            else:
                self.policy.count("plan_probe_skipped")
                plan = cache.nearest(machine, workload)
                if plan is not None:
                    self.policy.count("plan_nearest_reused")
                    source = "nearest-cache"
                else:
                    plan = build_plan(workload, machine, probe=False)
                    source = "analytic"
        selected = plan.selected
        impl = selected.impl if impl_req == "auto" else impl_req
        opts = parse_opts_key(selected.opts_key) if spec.opts == "auto" else explicit_opts
        tprime = selected.tprime if spec.tprime == "auto" else spec.tprime
        # Faults/integrity constrain the impl family (per the registry's
        # capability flags); if the plan picked an unsupported one, fall
        # back to the collective solver rather than failing the job on a
        # ConfigError.
        from ..algorithms import get_algorithm

        if spec.integrity and not get_algorithm(spec.algo, impl).supports_integrity:
            impl = "collective"
        elif spec.redundancy and not get_algorithm(spec.algo, impl).supports_resilience:
            impl = "collective"
        elif spec.has_faults and not get_algorithm(spec.algo, impl).supports_faults:
            impl = "collective"
        return impl, opts, tprime, {
            "source": source, "impl": impl, "opts": selected.opts_key
            if spec.opts == "auto" else spec.opts, "tprime": tprime,
            "probe_n": plan.probe_n,
        }

    # -- solving -------------------------------------------------------------

    def _fault_plan(self, spec: JobSpec, machine):
        if not spec.has_faults:
            return None
        from ..faults import FaultPlan

        return FaultPlan.from_cli(
            loss=spec.loss,
            stragglers=spec.stragglers,
            seed=spec.fault_seed,
            total_threads=machine.total_threads,
            corruption=spec.corruption,
            payload_corruption=spec.payload_corruption,
            node_loss_at=spec.node_loss_at,
            node_loss_node=spec.node_loss_node,
        )

    def _resilience(self, spec: JobSpec):
        if not spec.redundancy:
            return None
        from ..resilience import RedundancyConfig

        return RedundancyConfig(mode=spec.redundancy, spares=spec.spares)

    def _solve(self, spec: JobSpec, machine, impl, opts, tprime) -> dict:
        """One attempt; returns the result payload (verify not yet run)."""
        from ..core import connected_components, minimum_spanning_forest

        g, gw = self.graphs.get(spec)
        faults = self._fault_plan(spec, machine)
        integrity = True if spec.integrity else None
        resilience = self._resilience(spec)
        if spec.algo == "cc":
            res = connected_components(
                g, machine, impl=impl, opts=opts, tprime=tprime,
                faults=faults, graph_kind=spec.kind, integrity=integrity,
                resilience=resilience,
            )
            answer = {"num_components": res.num_components}
        elif spec.algo == "mst":
            res = minimum_spanning_forest(
                gw, machine, impl=impl, opts=opts, tprime=tprime,
                faults=faults, graph_kind=spec.kind, integrity=integrity,
                resilience=resilience,
            )
            answer = {"num_edges": res.num_edges, "total_weight": int(res.total_weight)}
        else:
            from ..bfs import solve_bfs_collective, solve_bfs_naive_upc, solve_bfs_sequential
            from ..bfs.solvers import UNREACHED

            source = spec.source % spec.n
            if impl == "collective":
                dist, info = solve_bfs_collective(g, source, machine, opts, tprime)
            elif impl == "naive":
                dist, info = solve_bfs_naive_upc(g, source, machine)
            else:
                dist, info = solve_bfs_sequential(g, source)
            reached = dist != UNREACHED
            answer = {"reached": int(reached.sum()), "levels": int(info.iterations)}
            res = None
        payload = {
            "algo": spec.algo,
            "answer": answer,
            "graph": spec.graph_fingerprint(),
        }
        if res is not None:
            c = res.info.trace.counters
            payload["modeled_ms"] = res.info.sim_time_ms
            payload["fault_counters"] = {
                "retries": c.retries, "crashes": c.crashes,
                "restores": c.checkpoint_restores,
                "corruptions_injected": c.corruptions_injected,
                "corruptions_detected": c.corruptions_detected,
                "repairs": c.repairs,
            }
            payload["_result_obj"] = res  # stripped after verification
        elif spec.algo == "bfs":
            payload["modeled_ms"] = info.sim_time_ms
            payload["_bfs_dist"] = dist
        return payload

    def _verify(self, spec: JobSpec, payload: dict) -> Optional[str]:
        """networkx-oracle check; None when correct, else the defect."""
        g, gw = self.graphs.get(spec)
        if spec.algo == "cc":
            from ..integrity.soak import _cc_wrong

            return _cc_wrong(payload["_result_obj"].labels, g)
        if spec.algo == "mst":
            from ..integrity.soak import _mst_wrong

            return _mst_wrong(payload["_result_obj"], gw)
        import networkx as nx

        from ..bfs.solvers import UNREACHED

        dist = payload["_bfs_dist"]
        source = spec.source % spec.n
        expected = nx.single_source_shortest_path_length(g.to_networkx(), source)
        for vertex in range(spec.n):
            want = expected.get(vertex, None)
            got = int(dist[vertex])
            if want is None and got != UNREACHED:
                return f"vertex {vertex}: unreachable but distance {got}"
            if want is not None and got != want:
                return f"vertex {vertex}: distance {got} != networkx {want}"
        return None

    # -- the lifecycle driver ------------------------------------------------

    def execute(self, job: Job) -> None:
        spec = job.spec
        if job.state != JobState.QUEUED:
            return  # shed while queued
        if job.deadline_exceeded():
            job.transition(
                JobState.CANCELLED, retriable=True,
                error="deadline exceeded while queued", finished_at=time.time(),
            )
            self.journal.record("cancelled", job, retriable=True, error=job.error)
            self.metrics.count("cancelled_deadline")
            return
        job.transition(JobState.RUNNING, started_at=time.time())
        self.journal.record("start", job)
        breaker = self.breaker_for(spec.tenant)
        mode = self.policy.mode(self.queue.occupancy)
        try:
            machine = self._machine_for(spec)
            impl, opts, tprime, provenance = self._resolve_plan(spec, machine, mode)
        except ReproError as err:
            job.transition(
                JobState.FAILED, retriable=False, error=str(err), finished_at=time.time()
            )
            self.journal.record("failed", job, retriable=False, error=job.error)
            self.metrics.count("failed")
            return

        attempt = 0
        while True:
            job.attempts = attempt + 1
            token = CancelToken(job.job_id, deadline_at=job.deadline_at)
            try:
                with cancel_scope(token):
                    payload = self._solve(spec, machine, impl, opts, tprime)
            except JobCancelled as err:
                job.transition(
                    JobState.CANCELLED, retriable=True, error=str(err),
                    finished_at=time.time(),
                )
                self.journal.record("cancelled", job, retriable=True, error=job.error)
                self.metrics.count("cancelled_deadline")
                return
            except ReproError as err:
                breaker.record_failure()
                self.metrics.count("attempt_failures")
                attempt += 1
                if attempt < self.backoff.max_attempts:
                    delay = self.backoff.delay(attempt - 1, key=job.job_id)
                    if job.deadline_at is None or time.monotonic() + delay < job.deadline_at:
                        self.metrics.count("retries")
                        time.sleep(delay)
                        continue
                job.transition(
                    JobState.FAILED, retriable=True,
                    error=f"{type(err).__name__}: {err}", finished_at=time.time(),
                )
                self.journal.record("failed", job, retriable=True, error=job.error)
                self.metrics.count("failed")
                return

            wrong = self._verify(spec, payload) if self.verify else None
            payload.pop("_result_obj", None)
            payload.pop("_bfs_dist", None)
            if wrong is not None:
                # The contract: a provably wrong answer is never served.
                breaker.record_failure()
                self.metrics.count("wrong_results_blocked")
                attempt += 1
                if attempt < self.backoff.max_attempts:
                    self.metrics.count("retries")
                    time.sleep(self.backoff.delay(attempt - 1, key=job.job_id))
                    continue
                job.transition(
                    JobState.FAILED, retriable=True,
                    error=f"result failed verification: {wrong}", finished_at=time.time(),
                )
                self.journal.record("failed", job, retriable=True, error=job.error)
                self.metrics.count("failed")
                return

            payload["verify"] = {
                "status": "verified" if self.verify else "unverified",
                "oracle": "networkx" if self.verify else None,
            }
            payload["plan"] = provenance
            payload["attempts"] = job.attempts
            job.transition(
                JobState.DONE, result=payload, finished_at=time.time(), retriable=False
            )
            breaker.record_success()
            self.journal.record("done", job, result=payload)
            self.metrics.count("completed")
            self.metrics.observe_latency(job.finished_at - job.submitted_at)
            return
