"""Bounded priority queue with admission control and shedding.

The service's backlog is **bounded** — an overloaded server answers
``429`` quickly instead of building an unbounded queue whose tail
latency guarantees every deadline is missed (the service-level analogue
of the paper's thesis: degrade gracefully under pressure rather than
collapse).

Admission outcomes for :meth:`AdmissionQueue.offer`:

* ``accepted`` — there was room (or a lower-priority victim was shed);
* ``shed:<victim-id>`` is reflected by the *victim's* state flipping to
  ``shed`` (retriable), journaled by the caller;
* ``rejected`` — the queue is full of work at equal or higher priority,
  so the *incoming* job is refused with a Retry-After hint.

Within a priority class, FIFO (submission sequence) order is preserved.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from .jobs import Job, JobState

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Thread-safe bounded queue, highest priority first, FIFO within."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1: got {capacity}")
        self.capacity = capacity
        self._entries: List[Tuple[int, int, Job]] = []  # (priority_rank, seq, job)
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.shed_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] — the degradation policy's input."""
        with self._lock:
            return len(self._entries) / self.capacity

    def offer(self, job: Job) -> Tuple[str, Optional[Job]]:
        """Try to enqueue ``job``.

        Returns ``("accepted", shed_victim_or_None)`` or
        ``("rejected", None)``.  When the queue is full, the
        lowest-priority, youngest queued job is shed *iff* it ranks
        strictly below the incoming job — shedding never evicts equal
        or higher priority work, so a flood of low-priority traffic
        cannot displace anything that matters.
        """
        with self._lock:
            if self._closed:
                self.rejected_total += 1
                return "rejected", None
            victim = None
            if len(self._entries) >= self.capacity:
                worst_idx = None
                for idx, (rank, seq, queued) in enumerate(self._entries):
                    if worst_idx is None:
                        worst_idx = idx
                    else:
                        w_rank, w_seq, _ = self._entries[worst_idx]
                        # Lowest rank loses; ties go to the youngest
                        # (largest seq) so older accepted work survives.
                        if (rank, -seq) < (w_rank, -w_seq):
                            worst_idx = idx
                if worst_idx is None or self._entries[worst_idx][0] >= job.spec.priority_rank:
                    self.rejected_total += 1
                    return "rejected", None
                _, _, victim = self._entries.pop(worst_idx)
                victim.transition(
                    JobState.SHED,
                    retriable=True,
                    error="shed: displaced by higher-priority work under overload",
                )
                self.shed_total += 1
            self._seq += 1
            self._entries.append((job.spec.priority_rank, self._seq, job))
            self._not_empty.notify()
            return "accepted", victim

    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the best entry (highest priority, FIFO within); ``None``
        on timeout or when the queue is closed and drained."""
        with self._not_empty:
            if not self._entries and not self._closed:
                self._not_empty.wait(timeout)
            if not self._entries:
                return None
            best_idx = 0
            for idx in range(1, len(self._entries)):
                rank, seq, _ = self._entries[idx]
                b_rank, b_seq, _ = self._entries[best_idx]
                if (-rank, seq) < (-b_rank, b_seq):
                    best_idx = idx
            _, _, job = self._entries.pop(best_idx)
            return job

    def close(self) -> None:
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
