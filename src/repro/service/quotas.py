"""Per-tenant token-bucket quotas.

Admission control's first gate: each tenant owns a token bucket with a
steady refill ``rate`` (requests/second) and a ``burst`` capacity.  A
submit costs one token; an empty bucket means ``429`` with a
``Retry-After`` computed from the actual deficit, so well-behaved
clients back off for exactly as long as the quota requires rather than
guessing.

The clock is injectable (monotonic seconds) so tests are deterministic;
buckets refill lazily on access — there is no background thread to
leak.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..errors import UsageError

__all__ = ["TokenBucket", "QuotaTable"]


class TokenBucket:
    """Classic token bucket with lazy refill.

    ``try_acquire`` returns ``0.0`` on success or the number of seconds
    until one full token will be available (the ``Retry-After`` hint).
    """

    def __init__(
        self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if rate <= 0:
            raise UsageError(f"quota rate must be > 0 requests/second: got {rate}")
        if burst < 1:
            raise UsageError(f"quota burst must be >= 1: got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 on success, else seconds to retry."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class QuotaTable:
    """One bucket per tenant, created on first sight.

    ``overrides`` pins specific tenants to a different (rate, burst) —
    the knob for premium or abusive tenants; everyone else shares the
    default shape (but not the same bucket: quotas isolate tenants from
    each other, which is the entire point).
    """

    def __init__(
        self,
        rate: float = 10.0,
        burst: float = 20.0,
        overrides: "Optional[Dict[str, Tuple[float, float]]]" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(tenant, (self.rate, self.burst))
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def try_acquire(self, tenant: str) -> float:
        """0.0 if ``tenant`` may submit now, else its Retry-After."""
        return self.bucket(tenant).try_acquire()
