"""Job model: what a tenant submits and what the service tracks.

A :class:`JobSpec` is the validated, immutable description parsed from a
``/submit`` request body; a :class:`Job` is the mutable server-side
record that moves through the lifecycle::

    queued -> running -> done
                      -> failed     (retriable or not)
           -> cancelled             (deadline exceeded; retriable)
           -> shed                  (evicted for higher-priority work; retriable)

Validation raises :class:`~repro.errors.UsageError` naming the offending
field, which the HTTP layer maps to ``400``.  Every *served* result
carries the verified-result contract: a ``verify`` block (networkx
oracle status) and a ``plan`` block (provenance of the configuration
that produced it) — see ``docs/service.md``.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from ..errors import UsageError

__all__ = ["JobSpec", "Job", "JobState", "PRIORITIES", "TERMINAL_STATES"]

#: Priority names, lowest first.  Shedding removes the *lowest* first.
PRIORITIES = ("low", "normal", "high")

_ALGOS = ("cc", "mst", "bfs")
_KINDS = ("random", "hybrid", "powerlaw")

#: Hard input ceiling: admission control starts at the parser — one
#: tenant must not be able to wedge a worker with an hour-long solve.
MAX_N = 200_000


class JobState:
    """Lifecycle states (plain strings so they serialize as-is)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    SHED = "shed"


TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.SHED)


def _field(payload: dict, name: str, kind, default):
    """Pull + type-check one request field (UsageError on junk)."""
    value = payload.get(name, default)
    if value is None:
        return None
    try:
        if kind is bool:
            if not isinstance(value, bool):
                raise TypeError
            return value
        if kind is int and isinstance(value, bool):
            raise TypeError
        return kind(value)
    except (TypeError, ValueError):
        raise UsageError(f"field {name!r} must be {kind.__name__}: got {value!r}") from None


@dataclass(frozen=True)
class JobSpec:
    """Validated description of one solve request."""

    tenant: str = "default"
    algo: str = "cc"
    n: int = 2048
    density: float = 4.0
    kind: str = "random"
    seed: int = 0
    machine: str = "4x2"
    impl: str = "collective"
    #: CC algorithm variant (a registered Liu–Tarjan name, e.g.
    #: ``lt-rfa``); sugar for ``impl`` — the two are mutually exclusive
    #: in a request body, and ``variant`` wins when both survive a
    #: journal round-trip.
    variant: Optional[str] = None
    opts: str = "all"
    tprime: "int | str" = 2
    priority: str = "normal"
    deadline_s: Optional[float] = None
    integrity: bool = False
    loss: float = 0.0
    stragglers: int = 0
    corruption: float = 0.0
    payload_corruption: float = 0.0
    fault_seed: int = 0
    #: Modeled time (seconds) at which ``node_loss_node`` is permanently
    #: lost; 0 = no loss.  Pair with ``redundancy`` or the job fails.
    node_loss_at: float = 0.0
    node_loss_node: int = 1
    #: Owner-block redundancy mode ("" = off, "buddy" | "parity").
    redundancy: str = ""
    spares: int = 0
    source: int = 0  # BFS root

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str) or len(self.tenant) > 64:
            raise UsageError(f"field 'tenant' must be a non-empty string <= 64 chars: got {self.tenant!r}")
        if self.algo not in _ALGOS:
            raise UsageError(f"field 'algo' must be one of {_ALGOS}: got {self.algo!r}")
        if self.kind not in _KINDS:
            raise UsageError(f"field 'kind' must be one of {_KINDS}: got {self.kind!r}")
        if not 2 <= self.n <= MAX_N:
            raise UsageError(f"field 'n' must be in [2, {MAX_N}]: got {self.n}")
        if not 0.5 <= self.density <= 64.0:
            raise UsageError(f"field 'density' must be in [0.5, 64]: got {self.density}")
        if self.priority not in PRIORITIES:
            raise UsageError(f"field 'priority' must be one of {PRIORITIES}: got {self.priority!r}")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise UsageError(f"field 'deadline_s' must be > 0: got {self.deadline_s}")
        if self.tprime != "auto" and (not isinstance(self.tprime, int) or self.tprime < 1):
            raise UsageError(f"field 'tprime' must be a positive int or 'auto': got {self.tprime!r}")
        if not 0.0 <= self.loss < 1.0:
            raise UsageError(f"field 'loss' must be in [0, 1): got {self.loss}")
        if self.stragglers < 0:
            raise UsageError(f"field 'stragglers' must be >= 0: got {self.stragglers}")
        if self.corruption < 0 or self.payload_corruption < 0:
            raise UsageError("corruption rates must be >= 0")
        if self.node_loss_at < 0:
            raise UsageError(f"field 'node_loss_at' must be >= 0: got {self.node_loss_at}")
        if self.node_loss_node < 0:
            raise UsageError(f"field 'node_loss_node' must be >= 0: got {self.node_loss_node}")
        if self.redundancy not in ("", "buddy", "parity"):
            raise UsageError(
                f"field 'redundancy' must be '', 'buddy' or 'parity': got {self.redundancy!r}"
            )
        if self.spares < 0:
            raise UsageError(f"field 'spares' must be >= 0: got {self.spares}")
        if self.algo == "bfs" and (
            self.loss or self.stragglers or self.corruption
            or self.payload_corruption or self.integrity
            or self.node_loss_at or self.redundancy
        ):
            raise UsageError("fault injection and integrity are only supported for cc/mst jobs")
        if self.variant is not None:
            if not isinstance(self.variant, str) or not self.variant:
                raise UsageError(f"field 'variant' must be a non-empty string: got {self.variant!r}")
            if self.algo != "cc":
                raise UsageError(
                    f"field 'variant' is only supported for cc jobs: got algo {self.algo!r}"
                )

    @property
    def m(self) -> int:
        return int(self.density * self.n)

    @property
    def priority_rank(self) -> int:
        return PRIORITIES.index(self.priority)

    @property
    def effective_impl(self) -> str:
        """The implementation that actually runs (``variant`` wins)."""
        return self.variant if self.variant is not None else self.impl

    @property
    def has_faults(self) -> bool:
        return bool(
            self.loss or self.stragglers or self.corruption
            or self.payload_corruption or self.node_loss_at
        )

    def graph_fingerprint(self) -> str:
        """Input-identity key for graph and plan reuse across jobs."""
        return f"{self.kind}:n{self.n}:m{self.m}:s{self.seed}"

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise UsageError("request body must be a JSON object")
        known = {
            "tenant", "algo", "n", "density", "kind", "seed", "machine", "impl",
            "variant", "opts", "tprime", "priority", "deadline_s", "integrity", "loss",
            "stragglers", "corruption", "payload_corruption", "fault_seed",
            "node_loss_at", "node_loss_node", "redundancy", "spares", "source",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise UsageError(f"unknown field(s) {unknown}; accepted: {sorted(known)}")
        if "variant" in payload and "impl" in payload:
            raise UsageError("fields 'variant' and 'impl' are mutually exclusive; send one")
        tprime = payload.get("tprime", 2)
        if tprime != "auto":
            tprime = _field(payload, "tprime", int, 2)
        deadline = payload.get("deadline_s")
        return cls(
            tenant=str(payload.get("tenant", "default")),
            algo=str(payload.get("algo", "cc")),
            n=_field(payload, "n", int, 2048),
            density=_field(payload, "density", float, 4.0),
            kind=str(payload.get("kind", "random")),
            seed=_field(payload, "seed", int, 0),
            machine=str(payload.get("machine", "4x2")),
            impl=str(payload.get("impl", "collective")),
            variant=None if payload.get("variant") is None else str(payload["variant"]),
            opts=str(payload.get("opts", "all")),
            tprime=tprime,
            priority=str(payload.get("priority", "normal")),
            deadline_s=None if deadline is None else _field(payload, "deadline_s", float, None),
            integrity=_field(payload, "integrity", bool, False),
            loss=_field(payload, "loss", float, 0.0),
            stragglers=_field(payload, "stragglers", int, 0),
            corruption=_field(payload, "corruption", float, 0.0),
            payload_corruption=_field(payload, "payload_corruption", float, 0.0),
            fault_seed=_field(payload, "fault_seed", int, 0),
            node_loss_at=_field(payload, "node_loss_at", float, 0.0),
            node_loss_node=_field(payload, "node_loss_node", int, 1),
            redundancy=str(payload.get("redundancy", "")),
            spares=_field(payload, "spares", int, 0),
            source=_field(payload, "source", int, 0),
        )

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


@dataclass
class Job:
    """Mutable server-side record for one submitted job."""

    spec: JobSpec
    job_id: str = ""
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    deadline_at: Optional[float] = None  # monotonic
    attempts: int = 0
    retriable: bool = False
    error: Optional[str] = None
    result: Optional[dict] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            # Random ids: a restarted server must never mint an id that
            # collides with a journaled job from a previous incarnation.
            self.job_id = f"job-{uuid.uuid4().hex[:12]}"
        if not self.submitted_at:
            self.submitted_at = time.time()
        if self.spec.deadline_s is not None and self.deadline_at is None:
            self.deadline_at = time.monotonic() + self.spec.deadline_s

    def deadline_exceeded(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline_at

    def transition(self, state: str, **fields) -> None:
        with self._lock:
            self.state = state
            for name, value in fields.items():
                setattr(self, name, value)

    def status_dict(self) -> dict:
        """The ``/status/<id>`` body (result payload omitted)."""
        with self._lock:
            latency = None
            if self.finished_at is not None:
                latency = self.finished_at - self.submitted_at
            return {
                "job_id": self.job_id,
                "tenant": self.spec.tenant,
                "algo": self.spec.algo,
                "priority": self.spec.priority,
                "state": self.state,
                "attempts": self.attempts,
                "retriable": self.retriable,
                "error": self.error,
                "latency_s": latency,
            }

    def result_dict(self) -> Optional[dict]:
        with self._lock:
            return dict(self.result) if self.result is not None else None
