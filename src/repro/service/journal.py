"""Crash-safe append-only job journal.

Every job lifecycle transition is appended as one JSON line —
``submit``, ``start``, ``done``, ``failed``, ``cancelled``, ``shed``,
``recovered`` — flushed and fsync'd before the transition is
acknowledged, so a ``kill -9`` can lose at most a transition that was
never acknowledged.  A torn final line (the crash landed mid-append) is
detected by the JSON parser during replay and ignored; every complete
line before it is intact because appends are serialized under a lock.

Replay folds the line stream into one record per job id:

* jobs whose last event is **terminal** keep their final status (and,
  for ``done``, the result payload) — a restarted server keeps serving
  ``/status`` and ``/result`` for them;
* jobs last seen as ``submit``/``start``/``recovered`` are **in-flight
  orphans**: the restarted server re-enqueues each one (state
  ``queued``, journaled as ``recovered``) so no journaled work is ever
  silently lost.  Expired deadlines surface as clean ``cancelled``
  (retriable) outcomes on the next dequeue rather than vanishing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO

from .jobs import Job, JobSpec, JobState

__all__ = ["JobJournal", "replay_journal"]

_TERMINAL_EVENTS = {"done", "failed", "cancelled", "shed"}


class JobJournal:
    """Append-only journal; one writer object per server process."""

    def __init__(self, path: "str | os.PathLike", fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    def record(self, event: str, job: Job, **fields) -> None:
        """Append one transition; durable before this method returns."""
        entry = {
            "ts": time.time(),
            "event": event,
            "job_id": job.job_id,
            "tenant": job.spec.tenant,
            "attempts": job.attempts,
        }
        if event == "submit":
            entry["spec"] = job.spec.to_dict()
            entry["deadline_s"] = job.spec.deadline_s
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=float) + "\n"
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line)
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def replay_journal(path: "str | os.PathLike") -> "tuple[Dict[str, dict], List[Job]]":
    """Fold a journal into ``(terminal_records, orphans)``.

    ``terminal_records`` maps job id -> the final journaled record
    (with ``state``, ``error``, ``result`` where applicable) for jobs
    that finished.  ``orphans`` are reconstructed :class:`Job` objects
    for journaled jobs with no terminal event — the work a crash left
    in flight, which the caller must re-enqueue or cleanly fail.
    """
    path = Path(path)
    specs: Dict[str, dict] = {}
    last: Dict[str, dict] = {}
    order: List[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {}, []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            # Torn tail from a mid-append crash: everything before it
            # is complete; nothing after it can exist.
            break
        job_id = entry.get("job_id")
        if not job_id:
            continue
        if job_id not in last:
            order.append(job_id)
        if entry.get("event") == "submit":
            specs[job_id] = entry
        last[job_id] = entry

    terminal: Dict[str, dict] = {}
    orphans: List[Job] = []
    state_by_event = {
        "done": JobState.DONE,
        "failed": JobState.FAILED,
        "cancelled": JobState.CANCELLED,
        "shed": JobState.SHED,
    }
    for job_id in order:
        entry = last[job_id]
        event = entry.get("event")
        if event in _TERMINAL_EVENTS:
            terminal[job_id] = {
                "job_id": job_id,
                "tenant": entry.get("tenant", "default"),
                "state": state_by_event[event],
                "attempts": int(entry.get("attempts", 0)),
                "retriable": bool(entry.get("retriable", False)),
                "error": entry.get("error"),
                "result": entry.get("result"),
                "spec": specs.get(job_id, {}).get("spec"),
            }
            continue
        submit = specs.get(job_id)
        if submit is None:
            # started-but-never-submitted cannot happen in one journal;
            # a foreign or truncated record is not actionable.
            continue
        try:
            spec = JobSpec(**submit["spec"])
        except Exception:
            continue  # schema drift: skip rather than crash recovery
        job = Job(spec=spec, job_id=job_id)
        job.attempts = int(entry.get("attempts", 0))
        # Deadlines are wall-relative to the original submission; after
        # a restart the budget is conservatively restarted rather than
        # resurrected (the original monotonic epoch died with the
        # crashed process).
        orphans.append(job)
    return terminal, orphans
