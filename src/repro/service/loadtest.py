"""Open-loop load generator for the graph-analytics service.

Drives a running server with a seeded Poisson arrival process at several
offered rates — including one past saturation — and measures what the
*service* delivers, not what the solvers could: accepted/429/shed
splits, end-to-end p50/p99 latency of completed jobs, throughput, and
the verified-result contract (every served result must carry
``verify.status == "verified"``; a single violation fails the run).

Open-loop matters: a closed-loop client slows down when the server slows
down, hiding saturation.  Here arrivals are scheduled on a wall-clock
timeline fixed *before* the first request, so an overloaded server faces
the same offered rate as a healthy one and its admission control has to
do the shedding.

Everything uses the stdlib ``urllib`` — the loadtest is also the e2e
exerciser in CI, where no HTTP client library is guaranteed.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import UsageError

__all__ = ["LoadtestConfig", "run_loadtest"]


@dataclass(frozen=True)
class LoadtestConfig:
    """One loadtest campaign: the same job mix at several offered rates."""

    base_url: str = "http://127.0.0.1:8642"
    rates_per_s: Sequence[float] = (2.0, 6.0, 18.0)
    jobs_per_level: int = 30
    tenants: Sequence[str] = ("acme", "globex", "initech")
    seed: int = 0
    n: int = 512
    density: float = 4.0
    machine: str = "4x2"
    deadline_s: float = 20.0
    fault_fraction: float = 0.25       # fraction of jobs with injected loss
    loss: float = 0.05
    poll_timeout_s: float = 120.0
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.rates_per_s or any(r <= 0 for r in self.rates_per_s):
            raise UsageError(f"rates must be positive: got {list(self.rates_per_s)}")
        if self.jobs_per_level < 1:
            raise UsageError(f"jobs_per_level must be >= 1: got {self.jobs_per_level}")
        if not self.tenants:
            raise UsageError("at least one tenant is required")


def _http_json(url: str, payload: Optional[dict] = None, timeout: float = 30.0):
    """(status, body) for a GET (payload None) or POST request."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        try:
            body = json.loads(err.read().decode("utf-8"))
        except ValueError:
            body = {"error": str(err)}
        return err.code, body


def _job_mix(config: LoadtestConfig, rng: random.Random, index: int) -> dict:
    """Deterministic job body number ``index`` in the campaign mix."""
    algo = rng.choice(("cc", "cc", "mst"))  # CC-heavy, like the paper's focus
    priority = rng.choice(("low", "normal", "normal", "high"))
    spec = {
        "tenant": rng.choice(list(config.tenants)),
        "algo": algo,
        "n": config.n,
        "density": config.density,
        "kind": rng.choice(("random", "hybrid")),
        "seed": rng.randrange(4),          # small pool -> graph-cache hits
        "machine": config.machine,
        "impl": "collective",
        "opts": "all",
        "priority": priority,
        "deadline_s": config.deadline_s,
    }
    if rng.random() < config.fault_fraction:
        spec["loss"] = config.loss
        spec["fault_seed"] = index
    return spec


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    values = sorted(values)
    idx = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
    return values[idx]


@dataclass
class _LevelStats:
    offered: int = 0
    accepted: int = 0
    rejected_429: int = 0
    rejected_503: int = 0
    errors: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    contract_violations: List[str] = field(default_factory=list)


def _submit_level(
    config: LoadtestConfig, rate: float, rng: random.Random, stats: _LevelStats
) -> List[str]:
    """Fire one level's arrivals open-loop; returns accepted job ids."""
    # The timeline is fixed up front: exponential gaps at the offered rate.
    gaps = [rng.expovariate(rate) for _ in range(config.jobs_per_level)]
    bodies = [_job_mix(config, rng, i) for i in range(config.jobs_per_level)]
    start = time.monotonic()
    deadline_for = []
    t = 0.0
    for gap in gaps:
        t += gap
        deadline_for.append(start + t)
    job_ids: List[str] = []
    lock = threading.Lock()

    def fire(when: float, body: dict) -> None:
        delay = when - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            status, reply = _http_json(f"{config.base_url}/submit", body)
        except (OSError, ValueError) as err:
            with lock:
                stats.errors += 1
                stats.contract_violations.append(f"transport error on submit: {err}")
            return
        with lock:
            if status == 202:
                stats.accepted += 1
                job_ids.append(reply["job_id"])
            elif status == 429:
                stats.rejected_429 += 1
            elif status == 503:
                stats.rejected_503 += 1
            else:
                stats.errors += 1
                stats.contract_violations.append(
                    f"unexpected submit status {status}: {reply}"
                )

    # One thread per arrival keeps the loop open: a slow submit response
    # never delays the next scheduled arrival.
    threads = [
        threading.Thread(target=fire, args=(when, body), daemon=True)
        for when, body in zip(deadline_for, bodies)
    ]
    stats.offered = len(threads)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return job_ids


def _drain_level(config: LoadtestConfig, job_ids: List[str], stats: _LevelStats) -> None:
    """Poll accepted jobs to a terminal state; enforce the contract."""
    from .jobs import JobState, TERMINAL_STATES

    pending = list(job_ids)
    give_up_at = time.monotonic() + config.poll_timeout_s
    while pending and time.monotonic() < give_up_at:
        still = []
        for job_id in pending:
            status, body = _http_json(f"{config.base_url}/status/{job_id}")
            if status != 200:
                stats.contract_violations.append(
                    f"status for accepted job {job_id} returned {status}"
                )
                continue
            state = body.get("state")
            if state not in TERMINAL_STATES:
                still.append(job_id)
                continue
            stats.outcomes[state] = stats.outcomes.get(state, 0) + 1
            if state == JobState.DONE:
                rstatus, rbody = _http_json(f"{config.base_url}/result/{job_id}")
                if rstatus != 200:
                    stats.contract_violations.append(
                        f"done job {job_id} result returned {rstatus}"
                    )
                    continue
                result = rbody.get("result") or {}
                verify = (result.get("verify") or {}).get("status")
                if verify != "verified":
                    stats.contract_violations.append(
                        f"job {job_id} served with verify status {verify!r}"
                    )
                if body.get("latency_s") is not None:
                    stats.latencies_s.append(body["latency_s"])
        pending = still
        if pending:
            time.sleep(config.poll_interval_s)
    for job_id in pending:
        stats.outcomes["unresolved"] = stats.outcomes.get("unresolved", 0) + 1
        stats.contract_violations.append(
            f"job {job_id} did not reach a terminal state within "
            f"{config.poll_timeout_s:.0f}s"
        )


def run_loadtest(config: LoadtestConfig) -> dict:
    """Run the campaign; returns the ``BENCH_service`` payload.

    The caller decides what to do with ``contract_violations`` (the CLI
    exits nonzero on any).  ``ok`` is True iff the server stayed up and
    never served an unverified or wrong result.
    """
    try:
        status, health = _http_json(f"{config.base_url}/healthz", timeout=5.0)
    except OSError as err:
        raise UsageError(
            f"cannot reach a service at {config.base_url}: {err}"
            " (start one with `python -m repro serve`)"
        ) from None
    if status != 200:
        raise UsageError(f"service at {config.base_url} is not healthy: {status} {health}")
    levels = []
    violations: List[str] = []
    for level_idx, rate in enumerate(config.rates_per_s):
        rng = random.Random(f"{config.seed}:{level_idx}")
        stats = _LevelStats()
        wall_start = time.monotonic()
        job_ids = _submit_level(config, rate, rng, stats)
        _drain_level(config, job_ids, stats)
        wall = time.monotonic() - wall_start
        done = stats.outcomes.get("done", 0)
        levels.append({
            "offered_rate_per_s": rate,
            "offered": stats.offered,
            "accepted": stats.accepted,
            "rejected_429": stats.rejected_429,
            "rejected_503": stats.rejected_503,
            "transport_errors": stats.errors,
            "outcomes": dict(sorted(stats.outcomes.items())),
            "completed": done,
            "throughput_per_s": done / wall if wall > 0 else 0.0,
            "shed_rate": (
                (stats.rejected_429 + stats.outcomes.get("shed", 0)) / stats.offered
                if stats.offered else 0.0
            ),
            "latency_p50_s": _percentile(stats.latencies_s, 0.50),
            "latency_p99_s": _percentile(stats.latencies_s, 0.99),
            "wall_s": wall,
        })
        violations.extend(stats.contract_violations)
    mstatus, metrics = _http_json(f"{config.base_url}/metrics", timeout=5.0)
    hstatus, _ = _http_json(f"{config.base_url}/healthz", timeout=5.0)
    if hstatus != 200:
        violations.append(f"server unhealthy after campaign: {hstatus}")
    return {
        "config": {
            "rates_per_s": list(config.rates_per_s),
            "jobs_per_level": config.jobs_per_level,
            "tenants": list(config.tenants),
            "seed": config.seed,
            "n": config.n,
            "density": config.density,
            "machine": config.machine,
            "deadline_s": config.deadline_s,
            "fault_fraction": config.fault_fraction,
            "loss": config.loss,
        },
        "levels": levels,
        "server_metrics": metrics if mstatus == 200 else {"error": mstatus},
        "contract_violations": violations,
        "ok": not violations,
    }
