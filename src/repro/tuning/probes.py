"""Calibration probes: measure the live machine, produce a MachineProfile.

The planner could read the :class:`~repro.runtime.machine.MachineConfig`
numbers directly, but that would couple it to the cost model's internal
parameterization — and on a real PGAS system (the DASH/DART line of work
this subsystem follows) those numbers are not declared anywhere, they
must be *measured*.  So the tuner does what a runtime autotuner would
do: it runs a handful of cheap micro-operations through the ordinary
charged runtime paths (fine-grained reads, a coalesced GetD, barriers,
random accesses at growing working sets) and reads the resulting modeled
clocks.  The output is a :class:`MachineProfile` — the empirical facts
the planner's search and the online adapter's thresholds are based on:

* ``fine_access_us``        — cost of one blocking fine-grained access;
* ``coalesced_elem_ns``     — marginal per-element cost inside a
  coalesced collective (the bandwidth term);
* ``coalesced_call_us``     — fixed per-collective overhead (sort +
  all-to-all setup + message latencies + barrier);
* ``cache_crossover_bytes`` — working-set size where random accesses
  start missing the modeled cache (drives ``t'`` selection);
* ``barrier_us`` / ``allreduce_us`` — synchronization costs.

Every probe is deterministic (fixed seeds, fixed sizes, modeled clocks
only), so calibrating the same machine twice yields the identical
profile — a requirement for the byte-identical plan cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from ..collectives.getd import getd
from ..core.optimizations import OptimizationFlags
from ..runtime.machine import MachineConfig
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime

__all__ = [
    "MachineProfile",
    "calibrate_backends",
    "calibrate_profile",
    "machine_fingerprint",
]

#: Elements each thread requests in the coalesced-transfer probes.
_PROBE_SMALL = 64
_PROBE_LARGE = 1024
#: Fine-grained accesses per thread in the latency probe.
_PROBE_FINE = 32


def machine_fingerprint(machine: MachineConfig) -> str:
    """Stable 16-hex-digit digest of every machine parameter.

    Two machines with identical parameter sets (regardless of ``name``)
    fingerprint identically; any parameter change — cache scaling,
    per-call scale, thread count — produces a new key.  This is the
    machine half of the tuning-plan cache key.
    """
    fields = asdict(machine)
    fields.pop("name", None)
    blob = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class MachineProfile:
    """Measured machine characteristics (all times are modeled).

    ``coalescing_gain`` is the headline ratio — how many times cheaper
    one element moves inside a coalesced transfer than as its own
    fine-grained message.  It is the measured form of the paper's
    Section III argument for rewriting with collectives, and the
    planner's basis for ranking the fine-grained ``naive`` impl last.
    """

    machine_key: str
    nodes: int
    threads_per_node: int
    fine_access_us: float
    coalesced_elem_ns: float
    coalesced_call_us: float
    cache_bytes: int
    cache_crossover_bytes: int
    barrier_us: float
    allreduce_us: float

    @property
    def total_threads(self) -> int:
        return self.nodes * self.threads_per_node

    @property
    def coalescing_gain(self) -> float:
        """Fine-grained vs coalesced per-element cost ratio (>1 means
        coalescing wins — always, on any realistic machine)."""
        return self.fine_access_us * 1e3 / max(self.coalesced_elem_ns, 1e-9)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineProfile":
        return cls(**payload)

    def summary_lines(self) -> list[str]:
        return [
            f"machine key        : {self.machine_key}",
            f"shape              : {self.nodes} node(s) x {self.threads_per_node} thread(s)",
            f"fine-grained access: {self.fine_access_us:.3f} us/elem",
            f"coalesced element  : {self.coalesced_elem_ns:.3f} ns/elem",
            f"coalesced call     : {self.coalesced_call_us:.3f} us/collective",
            f"coalescing gain    : {self.coalescing_gain:.0f}x",
            f"cache              : {self.cache_bytes:,} B"
            f" (random-access crossover ~{self.cache_crossover_bytes:,} B)",
            f"barrier            : {self.barrier_us:.3f} us",
            f"allreduce          : {self.allreduce_us:.3f} us",
        ]


def _spread_requests(rt: PGASRuntime, array_size: int, per_thread: int) -> PartitionedArray:
    """Request buffer where every thread asks for elements spread evenly
    over the whole array — the uniform all-to-all traffic the collective
    probes need (deterministic, no RNG)."""
    total = per_thread * rt.s
    idx = (np.arange(total, dtype=np.int64) * 7919) % array_size
    return PartitionedArray.even(idx, rt.s)


def _probe_fine_access(machine: MachineConfig) -> float:
    """Modeled microseconds of one blocking fine-grained access."""
    rt = PGASRuntime(machine)
    size = max(machine.total_threads * _PROBE_FINE, machine.total_threads)
    arr = rt.shared_array(np.zeros(size, dtype=np.int64))
    start = rt.elapsed
    requests = _spread_requests(rt, size, _PROBE_FINE)
    rt.fine_grained_read(arr, requests)
    per = (rt.elapsed - start) / _PROBE_FINE
    return per * 1e6


def _probe_coalesced(machine: MachineConfig) -> tuple[float, float]:
    """(per-element ns, per-call us) of a coalesced GetD, from a
    two-point fit: run the collective at two request sizes and split the
    modeled time into marginal and fixed parts."""
    times = {}
    for per_thread in (_PROBE_SMALL, _PROBE_LARGE):
        rt = PGASRuntime(machine)
        size = machine.total_threads * _PROBE_LARGE
        arr = rt.shared_array(np.zeros(size, dtype=np.int64))
        start = rt.elapsed
        requests = _spread_requests(rt, size, per_thread)
        getd(rt, arr, requests, OptimizationFlags.all(), tprime=1)
        times[per_thread] = rt.elapsed - start
    span = _PROBE_LARGE - _PROBE_SMALL
    per_elem = (times[_PROBE_LARGE] - times[_PROBE_SMALL]) / span
    per_elem = max(per_elem, 0.0)
    per_call = max(times[_PROBE_SMALL] - per_elem * _PROBE_SMALL, 0.0)
    return per_elem * 1e9, per_call * 1e6


def _probe_cache_crossover(machine: MachineConfig) -> int:
    """Smallest working set (bytes) where random accesses cost more than
    halfway between the all-hit and all-miss regimes, found by bisection
    on measured charges."""
    accesses = 1024.0

    def per_access(ws_bytes: float) -> float:
        rt = PGASRuntime(machine)
        start = rt.elapsed
        rt.local_random_access(accesses, ws_bytes)
        return (rt.elapsed - start) / accesses

    lo = float(machine.cache.line_bytes)
    hi = float(machine.cache.size_bytes) * 64.0
    midpoint = 0.5 * (per_access(lo) + per_access(hi))
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if per_access(mid) < midpoint:
            lo = mid
        else:
            hi = mid
    return int(round(hi))


def _probe_sync(machine: MachineConfig) -> tuple[float, float]:
    """(barrier us, allreduce us), measured on the live runtime."""
    rt = PGASRuntime(machine)
    start = rt.elapsed
    rt.barrier()
    barrier_s = rt.elapsed - start
    start = rt.elapsed
    rt.allreduce_flag(np.zeros(rt.s, dtype=bool))
    allreduce_s = rt.elapsed - start
    return barrier_s * 1e6, allreduce_s * 1e6


def calibrate_profile(machine: MachineConfig) -> MachineProfile:
    """Run all calibration probes against ``machine``.

    Cheap (a few thousand modeled operations, a handful of runtimes) and
    fully deterministic: same machine parameters, same profile.
    """
    fine_us = _probe_fine_access(machine)
    elem_ns, call_us = _probe_coalesced(machine)
    barrier_us, allreduce_us = _probe_sync(machine)
    return MachineProfile(
        machine_key=machine_fingerprint(machine),
        nodes=machine.nodes,
        threads_per_node=machine.threads_per_node,
        fine_access_us=fine_us,
        coalesced_elem_ns=elem_ns,
        coalesced_call_us=call_us,
        cache_bytes=machine.cache.size_bytes,
        cache_crossover_bytes=_probe_cache_crossover(machine),
        barrier_us=barrier_us,
        allreduce_us=allreduce_us,
    )


def calibrate_backends(repeats: int = 3, scale: float = 1.0):
    """Wall-clock timings of the kernel backends on this host.

    The other half of calibration: :func:`calibrate_profile` measures
    the *modeled* machine (deterministic, cached in the plan), this
    measures the *host* executing the simulation (nondeterministic,
    reported next to the plan but never stored in it — TuningPlan files
    are byte-compared in CI).  Thin re-export of
    :func:`repro.kernels.calibrate_backends`; see there for the record
    format.
    """
    from .. import kernels

    return kernels.calibrate_backends(repeats=repeats, scale=scale)
