"""Online adaptation: revise (flags, t') between rounds of a live solve.

The plan is a prediction; the solve is evidence.  After every grafting /
Borůvka round the adapter reads the :class:`~repro.runtime.profiling.
RoundWindow` the phase profiler collected and applies two rules, in the
spirit of DASH's runtime re-tuning:

* **hotspot rule** — if some phase in the round spent more than
  ``wait_threshold`` of its duration with threads parked at the barrier
  (one thread served nearly everything), enable ``offload``: that skew
  is the label-concentration hotspot the optimization exists for.  CC
  only — the MST solver's ``D[0]`` invariant forbids offload there, and
  the adapter is constructed with ``allow_offload=False`` for it.
* **divergence rule** — if a round ran slower than ``divergence`` × the
  best round seen so far at the current configuration (rounds under
  ``compact`` should get *cheaper*, never sharply worse), move ``t'``
  one step toward the cache-fit value :func:`~repro.scheduling.
  cache_model.best_tprime` predicts.  One step per round, capped by
  ``max_adaptations`` total.

Every decision (and every round where the adapter held still for a
reason worth auditing) is appended to the runtime trace via
:meth:`~repro.runtime.trace.Trace.record_event` and counted in
``counters.tuning_adaptations`` — adaptation never changes *results*
(flags and t' are performance knobs only), so auditability is the whole
correctness story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.optimizations import OptimizationFlags
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.profiling import PhaseProfiler
from ..runtime.runtime import PGASRuntime
from ..scheduling.cache_model import best_tprime

__all__ = ["OnlineAdapter", "AdapterConfig"]


@dataclass(frozen=True)
class AdapterConfig:
    """Thresholds of the two adaptation rules."""

    #: Enable offload when a phase's barrier-wait share exceeds this.
    wait_threshold: float = 0.55
    #: Adjust t' when a round exceeds this multiple of the best round.
    divergence: float = 1.5
    #: Total adaptation budget per solve (stability: the adapter must
    #: converge, not oscillate).
    max_adaptations: int = 4
    #: Rounds to observe before the divergence rule may fire (round 1
    #: has no baseline).
    warmup_rounds: int = 1


class OnlineAdapter:
    """Feedback controller threaded through a collective solve.

    Usage (inside the solvers)::

        adapter.begin(rt)               # after the runtime exists
        while not converged:
            ...one round...
            opts, tprime = adapter.on_round(opts, tprime)

    The adapter owns no solve state; it only reads the profiler window
    of the round that just finished and returns the configuration for
    the next one.
    """

    def __init__(
        self,
        machine: MachineConfig,
        n: int,
        allow_offload: bool = True,
        config: AdapterConfig = AdapterConfig(),
    ) -> None:
        self.machine = machine
        self.config = config
        self.allow_offload = allow_offload
        self._n = n
        block_elems = max(1, n // machine.total_threads)
        #: The cache-fit t' the divergence rule steps toward.
        self.target_tprime = best_tprime(block_elems, CostModel(machine))
        self.adaptations = 0
        self.decisions: List[str] = []
        self._rt: Optional[PGASRuntime] = None
        self._profiler: Optional[PhaseProfiler] = None
        self._mark = 0
        self._round = 0
        self._best_round_s: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def begin(self, rt: PGASRuntime) -> None:
        """Attach to a runtime (requires ``PGASRuntime(profile=True)`` —
        the solvers force that on when an adapter is present)."""
        self._rt = rt
        self._profiler = rt.profiler
        if self._profiler is not None:
            self._mark = self._profiler.checkpoint()

    def _record(self, decision: str) -> None:
        self.decisions.append(decision)
        if self._rt is not None:
            self._rt.trace.record_event(f"tuning: {decision}")
            self._rt.counters.add(tuning_adaptations=1)

    def on_membership_change(self, rt: PGASRuntime) -> None:
        """Re-plan for a post-loss machine (called by
        :meth:`repro.resilience.ResilientSession.recover_loss`): rebind
        to the recovered runtime's profiler, recompute the cache-fit t'
        target for the new thread count, and drop the old best-round
        baseline — round durations on the shrunken (or spare-patched)
        machine are not comparable to the old membership's."""
        old_threads = self.machine.total_threads
        self.machine = rt.machine
        block_elems = max(1, self._n // max(1, rt.machine.total_threads))
        self.target_tprime = best_tprime(block_elems, CostModel(rt.machine))
        self._best_round_s = None
        self.begin(rt)
        self._record(
            f"membership change: {old_threads} -> {rt.machine.total_threads} threads,"
            f" target t'={self.target_tprime}"
        )

    # -- per-round hook -----------------------------------------------------

    def on_round(self, opts: OptimizationFlags, tprime: int) -> tuple:
        """Digest the round that just finished; return the (possibly
        revised) configuration for the next one."""
        self._round += 1
        if self._profiler is None:
            return opts, tprime
        window = self._profiler.window_since(self._mark)
        self._mark = self._profiler.checkpoint()
        if window.phases == 0:
            return opts, tprime

        budget_left = self.adaptations < self.config.max_adaptations

        # Hotspot rule: sustained one-thread serves -> offload.
        if (
            budget_left
            and self.allow_offload
            and not opts.offload
            and window.max_wait_fraction > self.config.wait_threshold
        ):
            self.adaptations += 1
            self._record(
                f"round {self._round}: enable offload"
                f" (wait fraction {window.max_wait_fraction:.2f}"
                f" on thread {window.hottest_thread})"
            )
            opts = opts.with_(offload=True)
            # The config changed; the old best-round baseline no longer
            # describes the current configuration.
            self._best_round_s = None
            return opts, tprime

        # Divergence rule: this round sharply worse than the best seen.
        baseline = self._best_round_s
        if (
            budget_left
            and baseline is not None
            and self._round > self.config.warmup_rounds
            and tprime != self.target_tprime
            and window.duration_s > self.config.divergence * baseline
        ):
            step = 1 if self.target_tprime > tprime else -1
            new_tprime = tprime + step * max(1, abs(self.target_tprime - tprime) // 2)
            self.adaptations += 1
            self._record(
                f"round {self._round}: t' {tprime} -> {new_tprime}"
                f" (round {window.duration_s * 1e3:.3f} ms vs best"
                f" {baseline * 1e3:.3f} ms, target t'={self.target_tprime})"
            )
            tprime = new_tprime
            self._best_round_s = None
            return opts, tprime

        if baseline is None or window.duration_s < baseline:
            self._best_round_s = window.duration_s
        return opts, tprime
