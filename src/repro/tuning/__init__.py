"""repro.tuning: self-adaptive autotuner (machine probes → plan → adapt).

The paper hand-picks its configuration — all Section V flags on, ``t'``
chosen so a sub-block fits L2 — for one machine and one input family.
This package automates that judgment for *any* simulated machine × input
pair, in three layers:

* :mod:`~repro.tuning.probes` measures the live machine (fine-grained
  latency, coalesced bandwidth, cache crossover, sync costs) into a
  :class:`MachineProfile`;
* :mod:`~repro.tuning.planner` searches impl × flag-lattice × ``t'``
  analytically, then probe-solves the short-list on a scaled replica,
  producing a ranked :class:`TuningPlan`;
* :mod:`~repro.tuning.adapter` watches the phase profiler during the
  real solve and revises ``offload``/``t'`` between rounds when the plan
  diverges, recording every decision in the trace.

Plans persist in a deterministic JSON :class:`PlanCache`, so the
expensive part runs once per (machine, workload).

Entry points: ``--impl auto`` / ``--opts auto`` / ``--tprime auto`` on
the CLI, ``python -m repro tune`` for the predicted-vs-measured report,
and :func:`autotune` from code.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.machine import MachineConfig
from .adapter import AdapterConfig, OnlineAdapter
from .cache import PlanCache, default_cache_path
from .planner import (
    PROBE_N_CAP,
    PROBE_SEED,
    PlanEntry,
    TuningPlan,
    Workload,
    build_plan,
    expected_rounds,
    parse_opts_key,
    predict_config_ms,
)
from .probes import (
    MachineProfile,
    calibrate_backends,
    calibrate_profile,
    machine_fingerprint,
)

__all__ = [
    "AdapterConfig",
    "MachineProfile",
    "OnlineAdapter",
    "PlanCache",
    "PlanEntry",
    "PROBE_N_CAP",
    "PROBE_SEED",
    "TuningPlan",
    "Workload",
    "autotune",
    "build_plan",
    "calibrate_backends",
    "calibrate_profile",
    "default_cache_path",
    "expected_rounds",
    "machine_fingerprint",
    "parse_opts_key",
    "predict_config_ms",
]


def autotune(
    workload: Workload,
    machine: MachineConfig,
    cache: Optional[PlanCache] = None,
    use_cache: bool = True,
    probe: bool = True,
    workers=None,
) -> TuningPlan:
    """Plan for ``workload`` on ``machine``, via the persistent cache.

    Cache hit: the stored plan comes back untouched (no probes run).
    Miss: a plan is built, stored, and the cache saved.  Pass
    ``use_cache=False`` to force a fresh search without touching disk.
    ``workers`` fans probe solves across processes (plan identical for
    any worker count).
    """
    if not use_cache:
        return build_plan(workload, machine, probe=probe, workers=workers)
    if cache is None:
        cache = PlanCache()
    plan = cache.get(machine, workload)
    if plan is not None:
        return plan
    plan = build_plan(workload, machine, probe=probe, workers=workers)
    cache.put(machine, workload, plan)
    cache.save()
    return plan
