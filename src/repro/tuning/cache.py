"""Persistent tuning-plan cache.

Plans are expensive relative to a solve at small n (a probe stage is a
dozen small solves), and a plan is a pure function of (machine
parameters, workload), so the obvious move is a cache keyed on exactly
that: ``machine fingerprint × kind × graph family × n × m``.  One JSON
file, default ``.tune_cache.json`` at the repository root (override with
``REPRO_TUNE_CACHE``; ``benchmarks/`` and CI point it at a scratch
directory).

Determinism contract: saving the same plans in the same order always
produces byte-identical files (keys sorted, fixed float rounding done by
the plan's serializer, newline-terminated).  Corrupt, stale-schema, or
truncated cache files are treated as *empty* — the cache is an
optimization, never a correctness dependency — and are overwritten by
the next save.  Writes are atomic (temp file + rename) so a crashed run
can't leave a half-written cache behind.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, Optional

from ..atomicio import atomic_write_text
from ..runtime.machine import MachineConfig
from .planner import TuningPlan, Workload
from .probes import machine_fingerprint

__all__ = ["PlanCache", "default_cache_path"]

_SCHEMA_VERSION = 1
_ENV_VAR = "REPRO_TUNE_CACHE"


def default_cache_path() -> Path:
    """``$REPRO_TUNE_CACHE`` or ``<repo root>/.tune_cache.json``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".tune_cache.json"


def plan_key(machine: MachineConfig, workload: Workload) -> str:
    return f"{machine_fingerprint(machine)}|{workload.key()}"


class PlanCache:
    """Load/store :class:`TuningPlan` objects by (machine, workload)."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._plans: Dict[str, TuningPlan] = {}
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return  # missing or corrupt: start empty
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA_VERSION:
            return  # stale schema: regenerate rather than guess
        plans = payload.get("plans")
        if not isinstance(plans, dict):
            return
        for key, entry in plans.items():
            try:
                self._plans[key] = TuningPlan.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue  # one bad record doesn't poison the rest

    # -- read ---------------------------------------------------------------

    def get(self, machine: MachineConfig, workload: Workload) -> Optional[TuningPlan]:
        plan = self._plans.get(plan_key(machine, workload))
        if plan is None:
            return None
        # Guard against key collisions and hand-edited files: the stored
        # plan must actually describe this machine and workload.
        if plan.machine_key != machine_fingerprint(machine):
            return None
        if plan.workload != workload:
            return None
        return plan

    def nearest(
        self, machine: MachineConfig, workload: Workload, within: float = 8.0
    ) -> Optional[TuningPlan]:
        """Best cached plan for the same *graph fingerprint family*.

        The exact-key :meth:`get` misses whenever ``n``/``m`` differ at
        all; under service degradation we would rather reuse the plan
        tuned for the nearest input of the same ``kind`` ×
        ``graph_kind`` on this machine than pay for probe solves.  The
        nearest plan minimizes the log-space distance in ``(n, m)`` and
        must lie within a factor of ``within`` on both axes (the
        calibrated-scaling invariance keeps rankings stable across that
        range); beyond it, ``None`` — a stale plan is worse than the
        analytic default.
        """
        fingerprint = machine_fingerprint(machine)
        best: Optional[TuningPlan] = None
        best_dist = math.inf
        for plan in self._plans.values():
            w = plan.workload
            if plan.machine_key != fingerprint:
                continue
            if w.kind != workload.kind or w.graph_kind != workload.graph_kind:
                continue
            if min(w.n, workload.n) <= 0 or min(w.m, 1) <= 0 or workload.m <= 0:
                continue
            ratio_n = abs(math.log(w.n / workload.n))
            ratio_m = abs(math.log(max(w.m, 1) / workload.m))
            if ratio_n > math.log(within) or ratio_m > math.log(within):
                continue
            dist = ratio_n + ratio_m
            if dist < best_dist:
                best, best_dist = plan, dist
        return best

    def __len__(self) -> int:
        return len(self._plans)

    def keys(self) -> list:
        return sorted(self._plans)

    # -- write --------------------------------------------------------------

    def put(self, machine: MachineConfig, workload: Workload, plan: TuningPlan) -> None:
        self._plans[plan_key(machine, workload)] = plan

    def save(self) -> Path:
        """Write the cache atomically; returns the path written.

        Byte-identical for identical contents: plans serialize with
        sorted keys and fixed rounding, entries are ordered by key.
        """
        payload = {
            "schema": _SCHEMA_VERSION,
            "plans": {key: self._plans[key].to_dict() for key in sorted(self._plans)},
        }
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        return atomic_write_text(self.path, text)
