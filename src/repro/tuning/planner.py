"""Plan search: pick (impl, flags, t') for a machine × input pair.

Two stages, mirroring how production autotuners (ATLAS, FFTW, the DASH
runtime) prune an exponential space down to a handful of measurements:

1. **Analytic ranking** — a dry-run predictor walks the full lattice
   (:meth:`OptimizationFlags.lattice` × :func:`tprime_candidates` ×
   candidate impls) and prices one solve of each configuration using the
   same :class:`~repro.runtime.cost.CostModel` calls the collectives
   charge, with synthetic uniform request counts.  Hundreds of points,
   microseconds each, no solves.
2. **Probe refinement** — the top analytic candidates (plus the full
   all-flags × t' column and the paper's default configuration, so the
   measured set always contains the expected winner) are *actually
   solved* on a small replica input: same graph family, same m/n
   density, generated from a fixed seed, on a machine whose cache and
   per-call costs are scaled by the same factor as the input (the
   calibrated-scaling invariance of :mod:`repro.core.calibration` —
   modeled time is then ~linear in n, so the small-replica ranking is
   the full-size ranking).

The result is a :class:`TuningPlan`: every candidate with its predicted
and (where probed) measured modeled time, ranked, with ``entries[0]``
the selected configuration.  Plans are value objects — deterministic,
JSON-serializable, cacheable (:mod:`repro.tuning.cache`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..algorithms import REGISTRY, TuningEntry, get_algorithm
from ..core.optimizations import OptimizationFlags
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..graph.generators import hybrid_graph, powerlaw_graph, random_graph, with_random_weights
from ..runtime.cost import ELEM_BYTES, CostModel
from ..runtime.machine import MachineConfig, scaled_cache
from ..scheduling.cache_model import best_tprime, tprime_candidates
from .probes import MachineProfile, calibrate_profile, machine_fingerprint

__all__ = [
    "Workload",
    "PlanEntry",
    "TuningPlan",
    "build_plan",
    "predict_config_ms",
    "expected_rounds",
    "parse_opts_key",
    "PROBE_N_CAP",
    "PROBE_SEED",
]

#: Probe replicas never exceed this vertex count — large enough that the
#: per-round volumes dwarf startup noise, small enough that a full probe
#: sweep is ~a second of wall time.
PROBE_N_CAP = 3000
#: Seed for probe replica generation (fixed: plans must be deterministic).
PROBE_SEED = 2010

#: Fraction of a CC round's label requests that target the hot vertex 0
#: once grafting has concentrated labels (what ``offload`` drops).  Used
#: only for analytic ranking; probes measure the real skew.
_HOT_FRACTION = 0.15
#: Live-edge decay per round under ``compact`` (random/hybrid inputs
#: settle roughly half their live edges per grafting round).
_COMPACT_DECAY = 0.5
#: Shiloach-Vishkin performs more, cheaper rounds than grafting; net
#: modeled cost lands above the grafting solver by about this factor.
_SV_ROUND_FACTOR = 1.35


def parse_opts_key(key: str) -> OptimizationFlags:
    """Inverse of :meth:`OptimizationFlags.key`."""
    if key == "base":
        return OptimizationFlags.none()
    return OptimizationFlags.only(*key.split("+"))


@dataclass(frozen=True)
class Workload:
    """What the tuner is planning for: algorithm × input shape.

    ``graph_kind`` names the generator family (``random``, ``hybrid``,
    ...); the planner probes on a small replica drawn from the same
    family so skew characteristics (hub vertices, label concentration)
    carry over.  Kinds without a registered generator fall back to
    ``random`` at the same density.
    """

    kind: str  # "cc" | "mst"
    n: int
    m: int
    graph_kind: str = "random"

    def __post_init__(self) -> None:
        if self.kind not in ("cc", "mst"):
            raise ConfigError(f"workload kind must be 'cc' or 'mst', got {self.kind!r}")
        if self.n < 1 or self.m < 0:
            raise ConfigError(f"invalid workload sizes n={self.n}, m={self.m}")

    def key(self) -> str:
        return f"{self.kind}:{self.graph_kind}:n{self.n}:m{self.m}"


@dataclass(frozen=True)
class PlanEntry:
    """One lattice point with its predicted (and maybe measured) cost.

    ``predicted_ms`` comes from the analytic dry run; ``probed_ms`` from
    an actual solve of the scaled replica, rescaled to the full input
    size (``None`` when the entry was pruned before probing).  Both are
    modeled milliseconds at the *full* workload size.
    """

    impl: str
    opts_key: str
    tprime: int
    predicted_ms: float
    probed_ms: Optional[float] = None

    def opts(self) -> OptimizationFlags:
        return parse_opts_key(self.opts_key)

    @property
    def best_ms(self) -> float:
        return self.probed_ms if self.probed_ms is not None else self.predicted_ms

    def config_label(self) -> str:
        return f"{self.impl}/{self.opts_key}/t'={self.tprime}"


@dataclass(frozen=True)
class TuningPlan:
    """Ranked configurations for one machine × workload pair."""

    machine_key: str
    workload: Workload
    probe_n: int
    entries: tuple  # of PlanEntry, ranked best first
    lattice_size: int = 0

    @property
    def selected(self) -> PlanEntry:
        if not self.entries:
            raise ConfigError("empty tuning plan")
        return self.entries[0]

    def probed(self) -> List[PlanEntry]:
        return [e for e in self.entries if e.probed_ms is not None]

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "machine_key": self.machine_key,
            "kind": self.workload.kind,
            "n": self.workload.n,
            "m": self.workload.m,
            "graph_kind": self.workload.graph_kind,
            "probe_n": self.probe_n,
            "lattice_size": self.lattice_size,
            "entries": [
                {
                    "impl": e.impl,
                    "opts": e.opts_key,
                    "tprime": e.tprime,
                    "predicted_ms": round(e.predicted_ms, 6),
                    "probed_ms": None if e.probed_ms is None else round(e.probed_ms, 6),
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuningPlan":
        entries = tuple(
            PlanEntry(
                impl=item["impl"],
                opts_key=item["opts"],
                tprime=int(item["tprime"]),
                predicted_ms=float(item["predicted_ms"]),
                probed_ms=None if item["probed_ms"] is None else float(item["probed_ms"]),
            )
            for item in payload["entries"]
        )
        workload = Workload(
            kind=payload["kind"],
            n=int(payload["n"]),
            m=int(payload["m"]),
            graph_kind=payload["graph_kind"],
        )
        return cls(
            machine_key=payload["machine_key"],
            workload=workload,
            probe_n=int(payload["probe_n"]),
            entries=entries,
            lattice_size=int(payload.get("lattice_size", 0)),
        )

    def summary_lines(self) -> List[str]:
        sel = self.selected
        lines = [
            f"workload           : {self.workload.key()}",
            f"searched lattice   : {self.lattice_size} configurations"
            f" ({len(self.probed())} probe-measured at n={self.probe_n})",
            f"selected           : {sel.config_label()}"
            f" ({sel.best_ms:.3f} ms modeled)",
        ]
        return lines


def expected_rounds(n: int) -> int:
    """Round-count estimate for the grafting/Borůvka solvers.

    Both halve the live structure per round in expectation; the constant
    is irrelevant for ranking (it multiplies every configuration alike)
    but keeps predicted times in a sane absolute range for the ``tune``
    report.
    """
    return max(2, int(round(math.log2(max(n, 4)) / 2.0)))


def _getd_round_s(
    cost: CostModel,
    machine: MachineConfig,
    total_requests: float,
    n: int,
    opts: OptimizationFlags,
    tprime: int,
    hot_fraction: float,
    pay_ids: bool,
) -> float:
    """Modeled seconds of one GetD-shaped collective moving
    ``total_requests`` elements, with uniform per-thread traffic plus a
    single hot owner receiving ``hot_fraction`` of everything (the
    label-concentration hotspot ``offload`` defuses).

    Mirrors the charge sequence of :func:`repro.collectives.getd.getd`
    phase by phase, with per-thread counts replaced by their uniform
    expectation — a price list, not a simulation.
    """
    s = machine.total_threads
    t = machine.threads_per_node
    if total_requests <= 0:
        return cost.barrier_time()
    hot = hot_fraction if s > 1 else 0.0
    kept = total_requests * (1.0 - hot) if opts.offload else total_requests
    q = kept / s  # per-thread request count

    # Owner-id computation + the offload compare pass.
    work = float(cost.op_time(q)) if pay_ids and opts.ids else 0.0
    if not opts.ids:
        work = float(cost.intrinsic_id_time(q))
    if opts.offload:
        work += float(cost.op_time(total_requests / s))

    sort = float(cost.count_sort_time(q, s))
    setup = float(cost.alltoall_setup_time(s))

    # Serve phase: the hot owner's received count dominates the phase
    # (clocks advance to the max thread); without offload it serves its
    # uniform share plus the entire hot stream.
    block = max(1.0, n / s)
    recv_hot = q if opts.offload else q + total_requests * hot

    def serve(recv: float) -> float:
        if recv <= 0:
            return 0.0
        total = float(cost.virtual_scan_time(recv, tprime)) if tprime > 1 else 0.0
        distinct = min(recv, block)
        ws = cost.distinct_working_set(distinct, block * ELEM_BYTES, tprime)
        total += float(cost.gather_time(recv, distinct, ws, mlp=cost.GATHER_MLP))
        if not opts.localcpy:
            total += float(cost.op_time(recv * machine.cpu.upc_deref_factor))
        return total

    serve_s = max(serve(q), serve(recv_hot))

    # Bulk transfers: remote share of each owner's payload, one message
    # per off-node peer, node-serialized (t threads share the NIC).
    remote_frac = (s - t) / s if s > 1 else 0.0
    rem_elems = max(recv_hot, q) * remote_frac
    rem_msgs = max(s - t, 0)
    comm = float(
        cost.bulk_transfer_time(
            rem_elems, rem_msgs, rdma=opts.rdma, linear_order=not opts.circular
        )
    )
    comm *= min(t, s)
    # Same-node peer + self copies.
    local_elems = max(recv_hot, q) * (1.0 - remote_frac)
    copy = float(cost.seq_access_time(local_elems))

    permute = float(cost.grouped_permute_time(q))
    return work + sort + setup + serve_s + comm + copy + permute + cost.barrier_time()


def predict_config_ms(
    workload: Workload,
    machine: MachineConfig,
    impl: str,
    opts: OptimizationFlags,
    tprime: int,
) -> float:
    """Analytic modeled milliseconds of one full solve.

    Deliberately coarse — synthetic uniform traffic, an estimated round
    count, a fixed hot fraction — but built from the same cost-model
    price list the collectives charge, so it ranks the lattice well
    enough to choose probe candidates (the probe stage measures the
    survivors exactly).
    """
    cost = CostModel(machine)
    s = machine.total_threads
    n, m = workload.n, workload.m
    rounds = expected_rounds(n)

    if impl == "naive":
        # Fine-grained translation: every edge endpoint is its own
        # blocking remote access, occupancy node-serialized.
        per_round = 2.0 * m / s
        blocking = float(cost.fine_grained_blocking_time(per_round))
        occupancy = float(cost.fine_grained_occupancy_time(per_round))
        occupancy *= min(machine.threads_per_node, s)
        return (rounds * (blocking + occupancy + cost.barrier_time())) * 1e3

    total = 0.0
    live = float(m)
    hot = _HOT_FRACTION if workload.kind == "cc" else 0.0
    # MST hard-disables offload (the D[0] invariant fails for Boruvka).
    eff = opts.with_(offload=False) if workload.kind == "mst" else opts
    # The Liu–Tarjan variants are priced with their registry cost hints
    # (per-round collective counts differ by connect/shortcut/alter
    # axis); the legacy impls keep their original constants bit-for-bit.
    lt_entry = _lt_tuning_entry(impl)
    if lt_entry is not None:
        edge_collectives = lt_entry.edge_collectives
        jump_rounds = lt_entry.jump_rounds
    else:
        # Label fetches on the live edge lists (du/dv + root checks for
        # CC; du/dv + the SetDMin bids for MST).
        edge_collectives = 4 if workload.kind == "cc" else 3
        jump_rounds = 2.0
    for r in range(rounds):
        # With `ids` the owner buffers are cached across rounds unless
        # compact rebuilt the request lists.
        pay_ids = r == 0 or eff.compact
        total += edge_collectives * _getd_round_s(
            cost, machine, live, n, eff, tprime, hot, pay_ids
        )
        if eff.compact:
            total += float(cost.op_time(live / s))  # the keep-mask pass
            live *= _COMPACT_DECAY
        # Pointer jumping: collective rounds over the n labels (jump
        # requests never benefit from offload's hot-drop in MST either).
        jump_opts = eff.with_(offload=False) if workload.kind == "mst" else eff
        total += jump_rounds * _getd_round_s(
            cost, machine, float(n), n, jump_opts, tprime, hot, False
        )
        total += cost.allreduce_time()

    if impl == "sv":
        total *= _SV_ROUND_FACTOR
    elif lt_entry is not None:
        total *= lt_entry.round_factor
    return total * 1e3


# -- probe refinement ---------------------------------------------------------

_GENERATORS: Dict[str, Callable[[int, int, int], EdgeList]] = {
    "random": random_graph,
    "hybrid": hybrid_graph,
    "powerlaw": powerlaw_graph,
}


def _probe_graph(workload: Workload, probe_n: int) -> EdgeList:
    """Small same-family replica: same m/n density, fixed seed."""
    density = workload.m / max(workload.n, 1)
    probe_m = max(probe_n, int(round(density * probe_n)))
    gen = _GENERATORS.get(workload.graph_kind, random_graph)
    g = gen(probe_n, probe_m, PROBE_SEED)
    if workload.kind == "mst":
        g = with_random_weights(g, seed=PROBE_SEED)
    return g


def _probe_machine(machine: MachineConfig, f: float) -> MachineConfig:
    """Scale a machine for a probe input shrunk by factor ``f``.

    Scales cache AND multiplies the existing ``per_call_scale`` —
    ``machine`` may itself already be calibrated for the full input
    (``machine_for_input`` *replaces* per_call_scale, which would undo
    that calibration here).
    """
    if f >= 1.0:
        return machine
    return scaled_cache(machine, f).with_(per_call_scale=machine.per_call_scale * f)


def _probe_solve_ms(
    workload: Workload,
    graph: EdgeList,
    machine: MachineConfig,
    impl: str,
    opts: OptimizationFlags,
    tprime: int,
) -> float:
    """Actually solve the probe replica; modeled ms on the probe machine."""
    # Imported here: pipeline imports the tuning package for auto mode.
    from ..core.pipeline import connected_components, minimum_spanning_forest

    if workload.kind == "cc":
        result = connected_components(graph, machine, impl=impl, opts=opts, tprime=tprime)
    else:
        result = minimum_spanning_forest(graph, machine, impl=impl, opts=opts, tprime=tprime)
    return result.info.sim_time_ms


def _probe_task(task: tuple) -> float:
    """Picklable probe unit for the fan-out layer: one configuration,
    one scaled-replica solve, returns modeled ms."""
    workload, graph, machine, impl, opts_key, tprime = task
    return _probe_solve_ms(workload, graph, machine, impl, parse_opts_key(opts_key), tprime)


def _lt_tuning_entry(impl: str) -> "TuningEntry | None":
    """The registry cost hints for a Liu–Tarjan impl, else ``None``."""
    if not impl.startswith("lt-"):
        return None
    return get_algorithm("cc", impl).tuning


def _impl_candidates(kind: str) -> tuple:
    # The registry is the source of truth: every registered algorithm
    # with a tuning entry joins the search lattice (registering a new
    # variant automatically makes the planner consider it).  `naive` has
    # no entry — it is priced for the tune report but never probed, the
    # measured coalescing gain already rules it out analytically.
    return tuple(
        name for (k, name), spec in REGISTRY.items() if k == kind and spec.tuning is not None
    )


def _impl_lattice(kind: str, impl: str) -> tuple:
    """Flag combinations the planner searches for one impl.

    ``"full"`` lattice entries search every Section V combination (the
    paper's own configurations); ``"all-flags"`` entries — the LT
    variants — search only the all-optimizations column, whose flags are
    strictly beneficial inside the shared collectives, keeping the
    lattice bounded while still ranking every variant across t'.
    """
    entry = get_algorithm(kind, impl).tuning
    if entry is not None and entry.lattice == "all-flags":
        return (OptimizationFlags.all(),)
    return tuple(OptimizationFlags.lattice())


def build_plan(
    workload: Workload,
    machine: MachineConfig,
    profile: Optional[MachineProfile] = None,
    probe: bool = True,
    analytic_top_k: int = 6,
    probe_n_cap: int = PROBE_N_CAP,
    workers=None,
) -> TuningPlan:
    """Search the configuration lattice for ``workload`` on ``machine``.

    With ``probe=False`` only the analytic stage runs (instant; the
    ranking is approximate).  ``workers`` fans the probe solves (each an
    independent, fully-seeded run) across a process pool.  Deterministic
    either way, for any worker count.
    """
    if profile is None:
        profile = calibrate_profile(machine)
    cost = CostModel(machine)
    block_elems = max(1, workload.n // machine.total_threads)
    tprimes = tprime_candidates(block_elems, cost)

    entries: List[PlanEntry] = []
    for impl in _impl_candidates(workload.kind):
        for opts in _impl_lattice(workload.kind, impl):
            if workload.kind == "mst" and opts.offload:
                # The MST solver refuses offload (the D[0] invariant it
                # relies on fails for Boruvka), so offload-on lattice
                # points would duplicate their offload-off twins under
                # dishonest labels.  Search the honest half only.
                continue
            for tp in tprimes:
                entries.append(
                    PlanEntry(
                        impl=impl,
                        opts_key=opts.key(),
                        tprime=tp,
                        predicted_ms=predict_config_ms(workload, machine, impl, opts, tp),
                    )
                )
    # The naive translation, priced for the report (one row per t' would
    # be noise: flags and t' don't apply to it).
    entries.append(
        PlanEntry(
            impl="naive",
            opts_key="base",
            tprime=1,
            predicted_ms=predict_config_ms(
                workload, machine, "naive", OptimizationFlags.none(), 1
            ),
        )
    )
    lattice_size = len(entries)
    entries.sort(key=lambda e: (e.predicted_ms, e.impl, e.opts_key, e.tprime))

    probe_n = min(workload.n, probe_n_cap)
    if probe:
        # Probe set: analytic top-k, the full all-flags t' column (flag
        # monotonicity makes all-flags the expected winner; t' is where
        # the analytic model is least trusted), and the paper's default.
        all_flags = OptimizationFlags.all()
        if workload.kind == "mst":
            all_flags = all_flags.with_(offload=False)
        all_key = all_flags.key()
        chosen: Dict[tuple, PlanEntry] = {}

        def consider(entry: PlanEntry) -> None:
            chosen.setdefault((entry.impl, entry.opts_key, entry.tprime), entry)

        for entry in entries[:analytic_top_k]:
            if entry.impl != "naive":
                consider(entry)
        by_config = {(e.impl, e.opts_key, e.tprime): e for e in entries}
        for tp in tprimes:
            consider(by_config[("collective", all_key, tp)])
        default = by_config.get(("collective", all_key, 2))
        if default is None:
            default = PlanEntry(
                impl="collective",
                opts_key=all_key,
                tprime=2,
                predicted_ms=predict_config_ms(
                    workload, machine, "collective", all_flags, 2
                ),
            )
        consider(default)

        f = probe_n / workload.n
        graph = _probe_graph(workload, probe_n)
        pmachine = _probe_machine(machine, f)
        # Each probe is an independent seeded solve; fan them out (the
        # map preserves task order, so the plan is worker-count
        # independent).
        from ..perf.fanout import fanout_map

        keys = list(chosen.keys())
        tasks = [
            (workload, graph, pmachine, chosen[k].impl, chosen[k].opts_key, chosen[k].tprime)
            for k in keys
        ]
        probed = fanout_map(_probe_task, tasks, workers=workers)
        measured: Dict[tuple, PlanEntry] = {
            k: replace(chosen[k], probed_ms=ms / f) for k, ms in zip(keys, probed)
        }
        entries = [measured.get((e.impl, e.opts_key, e.tprime), e) for e in entries]
        entries.sort(
            key=lambda e: (
                e.probed_ms is None,  # probed entries rank first...
                e.best_ms,            # ...by measurement; rest by prediction
                e.impl,
                e.opts_key,
                e.tprime,
            )
        )

    return TuningPlan(
        machine_key=machine_fingerprint(machine),
        workload=workload,
        probe_n=probe_n,
        entries=tuple(entries),
        lattice_size=lattice_size,
    )


def plan_block_elems(workload: Workload, machine: MachineConfig) -> int:
    return max(1, workload.n // machine.total_threads)


def default_tprime(workload: Workload, machine: MachineConfig) -> int:
    """The cache-fit t' (what ``--tprime auto`` resolves to without a
    full plan)."""
    return best_tprime(plan_block_elems(workload, machine), CostModel(machine))


# Exported under stable names for the benchmarks and tests that need to
# scale machines / build replicas exactly the way the planner does.
probe_machine_for = _probe_machine
probe_graph_for = _probe_graph
