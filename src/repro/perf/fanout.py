"""Deterministic process-pool fan-out for embarrassingly-parallel runs.

Soak iterations, tuner probe solves, and benchmark scenario grids all
share the same shape: a list of independent work items, each fully
determined by its arguments (seeds included), whose results are
aggregated afterwards.  :func:`fanout_map` runs such a list across a
process pool while preserving the serial contract exactly:

* **deterministic partitioning** — items are dispatched in list order
  and results are reassembled in list order
  (:meth:`~concurrent.futures.Executor.map` semantics), so aggregation
  sees the same sequence regardless of worker count or completion
  order;
* **seed ownership stays with the item** — the fan-out never draws
  random numbers and never mutates the items; every worker recomputes
  exactly what the serial loop would have computed for that item;
* **workers <= 1 short-circuits** to a plain in-process loop (no pool,
  no pickling), which is also the fallback when the platform cannot
  spawn processes.

Because each worker process starts from the module defaults, the fast
engine and its caches behave identically in every worker; modeled
output therefore cannot depend on ``workers``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

from ..errors import ConfigError, UsageError

__all__ = ["fanout_map", "resolve_workers", "available_cpus"]

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware when available)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(workers, source: "str | None" = None) -> int:
    """Normalize a ``--workers`` value to a concrete positive count.

    ``None`` means serial (1), unless ``REPRO_PERF_WORKERS`` is set in
    the environment, which lets harnesses opt whole test runs into
    fan-out without plumbing flags.  *String* values — CLI flags and
    environment variables (``REPRO_PERF_WORKERS``,
    ``REPRO_BENCH_WORKERS``) — are validated strictly: ``"auto"`` (one
    worker per available CPU) or a positive integer; anything else
    (non-integer, zero, negative) raises a clear
    :class:`~repro.errors.UsageError` up front instead of crashing or
    silently misbehaving mid-fanout.  ``source`` names the flag or
    variable the value came from so the error says where to fix it.

    Programmatic *integer* arguments keep the permissive API contract:
    ``0`` means serial, a negative count means auto.
    """
    if workers is None:
        env = os.environ.get("REPRO_PERF_WORKERS", "").strip()
        if env:
            workers = env
            source = source or "REPRO_PERF_WORKERS"
        else:
            return 1
    if isinstance(workers, str):
        where = f" (from {source})" if source else ""
        text = workers.strip()
        if text.lower() == "auto":
            return available_cpus()
        try:
            count = int(text)
        except ValueError:
            raise UsageError(
                f"workers must be a positive integer or 'auto'{where}: got {workers!r}"
            ) from None
        if count < 1:
            raise UsageError(
                f"workers must be >= 1 or 'auto'{where}: got {count}"
            )
        return count
    try:
        workers = int(workers)
    except (TypeError, ValueError):
        raise ConfigError(f"workers must be an integer or 'auto': got {workers!r}") from None
    if workers < 0:
        return available_cpus()
    return max(1, workers)


def fanout_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers=None,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``fn`` to every item, optionally across a process pool.

    Results come back in item order.  ``fn`` and every item must be
    picklable when ``workers > 1`` (module-level functions and plain
    data — the soak/tuner workers are written that way).
    """
    items = list(items)
    nworkers = resolve_workers(workers)
    if nworkers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    nworkers = min(nworkers, len(items))
    try:
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            return list(pool.map(fn, items, chunksize=max(1, chunksize)))
    except (OSError, PermissionError):
        # Sandboxes without process spawning fall back to the serial
        # loop — same results, just slower.
        return [fn(item) for item in items]
