"""Golden-trace fingerprints: the bit-identity contract, made testable.

A *scenario* pins everything that feeds a solve — graph seed, machine
shape, algorithm, fault plan, race analyzer, integrity protection — and
:func:`scenario_fingerprint` reduces the run to a canonical, comparable
structure:

* every modeled float (``sim_time``, per-category seconds, the
  per-thread breakdown) is rendered with :meth:`float.hex`, so dict
  equality means **bit** equality, not approximate equality;
* result arrays (labels, forest edge ids) are folded to a SHA-256 of
  their raw bytes plus dtype/shape;
* counters are copied verbatim;
* a deterministic solver error (e.g. the convergence bound tripping on
  an unprotected corrupted run) is itself part of the fingerprint.

``SCENARIOS`` spans ``{cc, mst} × {faults, analyze, integrity} ×
{on, off}``.  The regression suite runs each scenario under the legacy
engine and the fast engine and asserts the fingerprints are equal —
which is the whole contract: wall-clock optimizations never alter
charged time, counters, or answers.

``REDUNDANCY_SCENARIOS`` is a separate tuple (the 16-scenario pin on
``SCENARIOS`` is itself a contract) covering owner-block redundancy:
buddy and parity modes, with and without transient faults, but with
**no node loss firing** — replication and round-commit charges are part
of the modeled time, so they too must be bit-identical across engines.
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass
from itertools import product

import numpy as np

from ..errors import ReproError

__all__ = ["Scenario", "SCENARIOS", "REDUNDANCY_SCENARIOS", "scenario_fingerprint"]


@dataclass(frozen=True)
class Scenario:
    """One pinned run of the golden matrix."""

    algo: str  # "cc" | "mst"
    faults: bool
    analyze: bool
    integrity: bool
    n: int = 384
    m: int = 1536
    seed: int = 7
    nodes: int = 4
    threads: int = 2
    #: Owner-block redundancy mode ("" = off, "buddy" | "parity").
    redundancy: str = ""

    @property
    def name(self) -> str:
        flags = "".join(
            tag for tag, on in (
                ("F", self.faults), ("A", self.analyze), ("I", self.integrity)
            ) if on
        )
        base = f"{self.algo}-{flags or 'plain'}"
        return f"{base}+{self.redundancy}" if self.redundancy else base


SCENARIOS = tuple(
    Scenario(algo=algo, faults=f, analyze=a, integrity=i)
    for algo, f, a, i in product(("cc", "mst"), (False, True), (False, True), (False, True))
)

#: Redundancy-on scenarios, kept out of ``SCENARIOS`` so its 16-entry
#: pin survives.  No node loss fires in any of these: the point is that
#: replication/commit charges are themselves engine-invariant.
REDUNDANCY_SCENARIOS = tuple(
    Scenario(algo=algo, faults=f, analyze=False, integrity=False, redundancy=mode)
    for algo, mode, f in product(("cc", "mst"), ("buddy", "parity"), (False, True))
)


def _hex(x: float) -> str:
    return float(x).hex()


def _array_fp(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
    }


def _fault_plan(scenario: Scenario):
    from ..faults.plan import FaultPlan

    return FaultPlan(
        seed=scenario.seed,
        loss=0.01,
        corruption=5.0e-3,
        payload_corruption=1.0e-4,
    )


def scenario_fingerprint(scenario: Scenario) -> dict:
    """Run the scenario under the *current* engine and fingerprint it."""
    from ..core.pipeline import connected_components, minimum_spanning_forest
    from ..graph.generators import random_graph, with_random_weights
    from ..integrity import IntegrityConfig
    from ..runtime.machine import hps_cluster

    machine = hps_cluster(scenario.nodes, scenario.threads)
    g = random_graph(scenario.n, scenario.m, seed=scenario.seed)
    plan = _fault_plan(scenario) if scenario.faults else None
    integrity = IntegrityConfig() if scenario.integrity else None
    resilience = None
    if scenario.redundancy:
        from ..resilience import RedundancyConfig

        resilience = RedundancyConfig(mode=scenario.redundancy, group=2)

    ctx = contextlib.nullcontext()
    if scenario.analyze:
        from ..analysis import analyzed

        ctx = analyzed()

    fp: dict = {"scenario": scenario.name}
    try:
        with ctx:
            if scenario.algo == "cc":
                res = connected_components(
                    g, machine, impl="collective", faults=plan,
                    integrity=integrity, resilience=resilience,
                )
                fp["result"] = {
                    "labels": _array_fp(res.labels),
                    "num_components": res.num_components,
                }
            else:
                gw = with_random_weights(g, seed=scenario.seed + 1)
                res = minimum_spanning_forest(
                    gw, machine, impl="collective", faults=plan,
                    integrity=integrity, resilience=resilience,
                )
                fp["result"] = {
                    "edge_ids": _array_fp(np.sort(res.edge_ids)),
                    "total_weight": int(res.total_weight),
                    "labels": _array_fp(res.labels),
                }
    except ReproError as err:
        # Deterministic failures (e.g. the convergence bound on an
        # unprotected corrupted run) must reproduce bit-for-bit too.
        fp["error"] = f"{type(err).__name__}: {err}"
        return fp

    info = res.info
    trace = info.trace
    fp["sim_time"] = _hex(info.sim_time)
    fp["iterations"] = int(info.iterations)
    fp["category_seconds"] = {c: _hex(v) for c, v in trace.category_seconds.items()}
    fp["breakdown"] = {c: _hex(v) for c, v in trace.breakdown(machine.total_threads).items()}
    fp["counters"] = trace.counters.as_dict()
    return fp
