"""The ``BENCH_wallclock.json`` harness (``python -m repro perf``).

Measures the thing the perf layer actually claims — simulator
wall-clock — honestly, by timing the *same* pinned workload under the
fast engine and the legacy engine in one process on this machine, so
the reported speedup never depends on a recorded number from different
hardware.  Two measurements:

* ``serial``: a tier-1-equivalent workload (CC + MST collective solves,
  plus a faulted+integrity-protected solve) per engine; the speedup is
  ``legacy_s / fast_s`` and the CI smoke job gates on ``--min-speedup``.
* ``fanout``: soak-campaign throughput (iterations/second) serial vs.
  ``--workers`` processes.  Only meaningful on multi-core machines;
  recorded with the core count so single-core CI readers can tell why
  the ratio is ~1.

``--baseline`` compares the fast-engine serial seconds against a
previously recorded ``BENCH_wallclock.json`` and fails on >25%
regression (same-machine comparisons only — CI runs both on one
runner).
"""

from __future__ import annotations

import time

from . import state
from .arena import global_arena
from .derived import clear_derived_caches, derived_cache_stats
from .fanout import available_cpus, resolve_workers

__all__ = ["run_kernel_bench", "run_wallclock_bench", "serial_workload"]

#: Pinned tier-1-equivalent workload shape (scaled by ``--scale``).
_WORKLOAD_N = 20_000
_WORKLOAD_DEGREE = 4
_SOAK_ITERATIONS = 4


def serial_workload(scale: float = 1.0) -> None:
    """One pass of the pinned workload under the current engine."""
    from ..core.pipeline import connected_components, minimum_spanning_forest
    from ..faults.plan import FaultPlan
    from ..graph.generators import random_graph, with_random_weights
    from ..integrity import IntegrityConfig
    from ..runtime.machine import hps_cluster

    n = max(64, int(_WORKLOAD_N * scale))
    machine = hps_cluster(16, 8)
    g = random_graph(n, _WORKLOAD_DEGREE * n, seed=2010)
    gw = with_random_weights(g, seed=2011)
    connected_components(g, machine, impl="collective")
    minimum_spanning_forest(gw, machine, impl="collective")
    # The faulted leg stays pinned: its injected-corruption count grows
    # with modeled time, and past ~3x scale replay would (correctly)
    # give up.  It exercises the integrity path, not the scaling story.
    small = random_graph(2500, 10_000, seed=2012)
    plan = FaultPlan(seed=3, loss=0.01, corruption=5.0e-3, payload_corruption=1.0e-4)
    connected_components(
        small, hps_cluster(4, 2), impl="collective", faults=plan,
        integrity=IntegrityConfig(),
    )


def _time_engine(fast: bool, scale: float, repeats: int) -> float:
    """Best-of-``repeats`` seconds for the workload on one engine."""
    previous = state.set_fast_engine(fast)
    clear_derived_caches()
    global_arena().clear()
    try:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            serial_workload(scale)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        state.set_fast_engine(previous)
        clear_derived_caches()


def _soak_throughput(scale: float, workers: int) -> dict:
    from ..integrity.soak import SoakConfig, run_soak

    config = SoakConfig(
        iterations=_SOAK_ITERATIONS,
        seed=42,
        n=max(64, int(2048 * scale)),
        m=max(256, int(8192 * scale)),
        nodes=4,
        threads=2,
    )
    t0 = time.perf_counter()
    run_soak(config, write_json=False, workers=workers)
    seconds = time.perf_counter() - t0
    runs = config.iterations * len(config.algos)
    return {
        "workers": workers,
        "seconds": seconds,
        "iterations_per_second": runs / seconds if seconds > 0 else float("inf"),
    }


def run_wallclock_bench(
    out_dir=None,
    scale: float = 1.0,
    repeats: int = 2,
    workers=None,
    write_json: bool = True,
) -> dict:
    """Measure both engines and the fan-out; return the payload."""
    fast_s = _time_engine(True, scale, repeats)
    legacy_s = _time_engine(False, scale, repeats)

    cpus = available_cpus()
    nworkers = resolve_workers(workers if workers is not None else "auto")
    serial_soak = _soak_throughput(scale, workers=1)
    if nworkers > 1:
        fan_soak = _soak_throughput(scale, workers=nworkers)
    else:
        fan_soak = dict(serial_soak, note="single-core host: fan-out not exercised")
    fan_speedup = (
        fan_soak["iterations_per_second"] / serial_soak["iterations_per_second"]
        if serial_soak["iterations_per_second"] else float("inf")
    )

    payload = {
        "scale": scale,
        "repeats": repeats,
        "cpus": cpus,
        "serial": {
            "fast_seconds": fast_s,
            "legacy_seconds": legacy_s,
            "speedup": legacy_s / fast_s if fast_s > 0 else float("inf"),
        },
        "fanout": {
            "serial": serial_soak,
            "parallel": fan_soak,
            "throughput_speedup": fan_speedup,
        },
        "arena": global_arena().stats(),
        "derived_caches": derived_cache_stats(),
    }
    if write_json:
        from ..bench.harness import write_bench_json

        payload["path"] = str(write_bench_json("wallclock", payload, directory=out_dir))
    return payload


def check_against_baseline(payload: dict, baseline: dict, tolerance: float = 0.25) -> "str | None":
    """Compare fast-engine serial seconds to a recorded same-machine
    baseline; return a failure message when >``tolerance`` slower."""
    try:
        now = float(payload["serial"]["fast_seconds"])
        then = float(baseline["serial"]["fast_seconds"])
    except (KeyError, TypeError, ValueError):
        return "baseline file lacks serial.fast_seconds"
    if then <= 0:
        return None
    if now > then * (1.0 + tolerance):
        return (
            f"wallclock regression: {now:.3f}s vs baseline {then:.3f}s"
            f" (>{tolerance:.0%} slower)"
        )
    return None


# -- kernel-backend benchmark (BENCH_kernels.json) ----------------------------

#: Kernel-bench micro presets: probe-workload scale multipliers.
_KERNEL_PRESETS = (("micro-0.5x", 0.5), ("micro-1x", 1.0), ("micro-2x", 2.0))
#: Solve-preset graph size (scaled by ``--scale``).
_KERNEL_SOLVE_N = 8_000


def _kernel_solve_workload(scale: float) -> None:
    """One CC + MST collective solve — the macro preset the backends are
    compared on (and the sharded leg re-runs)."""
    from ..core.pipeline import connected_components, minimum_spanning_forest
    from ..graph.generators import random_graph, with_random_weights
    from ..runtime.machine import hps_cluster

    n = max(256, int(_KERNEL_SOLVE_N * scale))
    machine = hps_cluster(8, 4)
    g = random_graph(n, 4 * n, seed=2020)
    gw = with_random_weights(g, seed=2021)
    connected_components(g, machine, impl="collective")
    minimum_spanning_forest(gw, machine, impl="collective")


def _best_of(fn, repeats: int) -> float:
    fn()  # warm: JIT compile, pool scratch, derived caches
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_kernel_bench(
    out_dir=None,
    scale: float = 1.0,
    repeats: int = 2,
    workers=None,
    write_json: bool = True,
) -> dict:
    """Per-backend x per-preset kernel timings plus a sharded-solve leg.

    Every available backend runs the same micro presets (the fused
    kernel probe workload at three sizes) and the same macro preset (a
    CC + MST collective solve); speedups are against the numpy baseline
    measured in the same process.  Unavailable backends are recorded
    with their skip reason, never an error.  The sharding leg re-runs
    the solve inside a :class:`~repro.perf.shard.ShardedSession`; on a
    single-core host the honest ~1x ratio is recorded alongside the CPU
    count.  Payload lands in ``BENCH_kernels.json``.
    """
    from .. import kernels
    from .shard import ShardedSession

    cpus = available_cpus()
    backends = []
    baseline: dict = {}
    for name in kernels.BACKENDS:
        reason = kernels.missing_reason(name)
        if reason is not None:
            backends.append(
                {"backend": name, "available": False, "reason": reason, "presets": {}}
            )
            continue
        presets = {}
        with kernels.use_backend(name) as backend:
            for preset, mult in _KERNEL_PRESETS:
                presets[preset] = _best_of(
                    lambda b=backend, m=mult: kernels._probe_workload(b, scale * m),
                    repeats,
                )
            clear_derived_caches()
            global_arena().clear()
            presets["solve"] = _best_of(lambda: _kernel_solve_workload(scale), repeats)
        record = {
            "backend": name,
            "available": True,
            "reason": None,
            "presets": presets,
        }
        if name == "numpy":
            baseline = presets
        backends.append(record)
    for record in backends:
        if record["available"] and baseline:
            record["speedup_vs_numpy"] = {
                preset: baseline[preset] / seconds if seconds > 0 else float("inf")
                for preset, seconds in record["presets"].items()
            }

    serial_solve = baseline.get("solve", 0.0)
    nworkers = resolve_workers(workers if workers is not None else "auto")
    shard = {"workers": nworkers, "seconds": None, "speedup": None, "note": ""}
    if nworkers > 1:
        clear_derived_caches()
        global_arena().clear()
        with ShardedSession(
            nworkers, min_array_elems=1 << 12, min_request_elems=1 << 10
        ) as session:
            shard["seconds"] = _best_of(lambda: _kernel_solve_workload(scale), repeats)
            shard["stats"] = session.stats()
        shard["note"] = session.note
        if serial_solve and shard["seconds"]:
            shard["speedup"] = serial_solve / shard["seconds"]
    else:
        shard["note"] = "single-core host: sharding not exercised"

    payload = {
        "scale": scale,
        "repeats": repeats,
        "cpus": cpus,
        "backends": backends,
        "shard": shard,
        "arena": global_arena().stats(),
    }
    if write_json:
        from ..bench.harness import write_bench_json

        payload["path"] = str(write_bench_json("kernels", payload, directory=out_dir))
    return payload
