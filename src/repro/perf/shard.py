"""Intra-run sharding: one solve spread across worker processes.

:mod:`repro.perf.fanout` parallelizes *independent* runs; this module
parallelizes the inside of **one** run.  A :class:`ShardedSession`
backs large :class:`~repro.runtime.shared_array.SharedArray` owner
blocks with real ``multiprocessing.shared_memory`` segments and keeps a
pool of forked workers attached to them; the per-node phases of the
CRCW scatters and the collective gather then execute across the pool —
each worker applies exactly the requests that target the node blocks it
owns — with a real ``multiprocessing.Barrier`` closing every round.
This is the honest next rung of the substitution argument: the
simulated PGAS program's data plane becomes an actual PGAS program
(separate processes, shared segments, owner-computes, barrier).

**Bit-identity.**  Grouped-minima adjudication is per-target, targets
are partitioned disjointly by owner block, and changed counts add
across disjoint target sets — so a sharded ``scatter_min`` /
``scatter_store_min`` / ``gather`` produces byte-identical array
contents and identical return values to the serial kernel, for any
worker count.  Modeled time never enters this module at all: charged
cost, integrity digests, and redundancy replica hooks all operate on
the parent's array object, whose ``.data`` *is* the shared segment.
The golden suite pins both claims (``tests/test_shard.py``).

**Segment lifetime.**  Every segment is created by the parent, attached
by all workers (a barrier round), and then **immediately unlinked** —
the mapping stays alive in every attached process, but the
``/dev/shm`` entry is gone within the same call.  A ``kill -9`` of any
process at any later point therefore cannot leak a segment; normal and
exception exits (``UnrecoverableLossError`` included) additionally
copy adopted arrays back to private heap memory and close all
mappings.  (The workers are forked and share the parent's
``resource_tracker`` process, so the parent's unlink keeps its cache
exact — see :func:`_attach`.)

Dispatch thresholds (``min_array_elems``, ``min_request_elems``) are
pure wall-clock knobs: below them the serial kernel runs instead, and
the result is identical either way.  Hosts that cannot fork (or have
one CPU and an explicit ``workers<=1``) degrade to a no-op session.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing as mp
import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import UsageError
from ..kernels.numpy_backend import group_minima_numpy

__all__ = ["ShardedSession", "current_session", "sharded_session"]

#: /dev/shm name prefix — the lifecycle tests glob for this.
SEGMENT_PREFIX = "repro-shm"

_CURRENT: "ShardedSession | None" = None

#: Platform-native int64 dtype string (scratch segments are keyed by it).
_I8 = np.dtype(np.int64).str

#: Barrier timeout (seconds): a dead worker must surface as an error,
#: never a hang.
_SYNC_TIMEOUT = 120.0


def current_session() -> "ShardedSession | None":
    """The session whose pool covers newly allocated shared arrays, or
    ``None`` — consulted by ``PGASRuntime.shared_array`` (adoption) and
    the ``SharedArray`` scatter/gather hot paths (dispatch)."""
    return _CURRENT


def _attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach.

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker (no ``track=False`` yet), but the workers are
    *forked*, so they share the parent's tracker process and its
    name cache is a set: the duplicate registration is a no-op, and
    the parent's immediate ``unlink`` performs the one unregister the
    cache needs.  Unregistering here too would over-remove and make
    the tracker print KeyError noise at exit.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_range(
    rank: int, nworkers: int, size: int, block: int, tpn: int, nodes: int
) -> tuple:
    """Half-open element range owned by ``rank``: a contiguous run of
    whole *node* blocks, so every shared-array index belongs to exactly
    one worker and each worker executes its nodes' phase."""
    node_block = block * tpn
    node_lo = rank * nodes // nworkers
    node_hi = (rank + 1) * nodes // nworkers
    lo = min(node_lo * node_block, size)
    hi = size if node_hi >= nodes else min(node_hi * node_block, size)
    return lo, hi


def _apply_scatter_min(data: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> int:
    """The serial fast-path scatter_min, restricted to one block range
    (bit-identical: grouping and adjudication are per-target)."""
    if idx.size == 0:
        return 0
    targets, minima = group_minima_numpy(idx, vals)
    before = data[targets]
    new = np.minimum(before, minima)
    changed = int(np.count_nonzero(new != before))
    data[targets] = new
    return changed


def _apply_scatter_store_min(data: np.ndarray, idx: np.ndarray, vals64: np.ndarray) -> int:
    if idx.size == 0:
        return 0
    targets, minima = group_minima_numpy(idx, vals64)
    keep = minima != np.iinfo(np.int64).max
    targets, minima = targets[keep], minima[keep]
    changed = int(np.count_nonzero(data[targets] != minima))
    data[targets] = minima.astype(data.dtype)
    return changed


def _worker_main(rank: int, nworkers: int, pipe, barrier) -> None:
    """Pool worker: attach segments on command, execute its share of
    each scatter/gather round, meet the barrier."""
    arrays = {}  # key -> (view, shm, size, block, tpn, nodes)
    scratch = {}  # (kind, dtype_str) -> (view, shm)
    try:
        while True:
            try:
                cmd = pipe.recv()
            except (EOFError, OSError):
                break
            op = cmd[0]
            if op == "exit":
                break
            if op == "adopt":
                _, key, name, dtype_str, size, block, tpn, nodes = cmd
                shm = _attach(name)
                view = np.ndarray((size,), dtype=np.dtype(dtype_str), buffer=shm.buf)
                arrays[key] = (view, shm, size, block, tpn, nodes)
            elif op == "scratch":
                _, kind, dtype_str, name, cap = cmd
                old = scratch.get((kind, dtype_str))
                shm = _attach(name)
                view = np.ndarray((cap,), dtype=np.dtype(dtype_str), buffer=shm.buf)
                scratch[(kind, dtype_str)] = (view, shm)
                if old is not None:
                    old[1].close()
            elif op in ("scatter_min", "scatter_store_min"):
                _, key, n, val_dtype = cmd
                view, _, size, block, tpn, nodes = arrays[key]
                lo, hi = _worker_range(rank, nworkers, size, block, tpn, nodes)
                idx = scratch[("idx", _I8)][0][:n]
                vals = scratch[("val", val_dtype)][0][:n]
                mask = (idx >= lo) & (idx < hi)
                if op == "scatter_min":
                    changed = _apply_scatter_min(view, idx[mask], vals[mask])
                else:
                    changed = _apply_scatter_store_min(view, idx[mask], vals[mask])
                scratch[("res", _I8)][0][rank] = changed
            elif op == "gather":
                _, key, n, out_dtype = cmd
                view, _, size, block, tpn, nodes = arrays[key]
                lo, hi = _worker_range(rank, nworkers, size, block, tpn, nodes)
                idx = scratch[("idx", _I8)][0][:n]
                out = scratch[("out", out_dtype)][0][:n]
                pos = np.flatnonzero((idx >= lo) & (idx < hi))
                out[pos] = view[idx[pos]]
            try:
                barrier.wait(timeout=_SYNC_TIMEOUT)
            except Exception:
                break
    finally:
        for _, shm, *_rest in arrays.values():
            shm.close()
        for _, shm in scratch.values():
            shm.close()


class ShardedSession:
    """Context manager owning one shard pool (see module docstring).

    ``workers`` is the pool width (``<= 1`` or an unforkable platform
    degrades to a transparent no-op).  ``min_array_elems`` gates which
    shared arrays are adopted into shared memory; ``min_request_elems``
    gates which individual scatter/gather calls are worth a pool round
    trip — both are wall-clock knobs with no effect on results.
    """

    def __init__(
        self,
        workers: int,
        *,
        min_array_elems: int = 1 << 14,
        min_request_elems: int = 1 << 12,
    ) -> None:
        workers = int(workers)
        if workers < 0:
            raise UsageError(f"shard worker count must be >= 0, got {workers}")
        self.requested_workers = workers
        self.min_array_elems = int(min_array_elems)
        self.min_request_elems = int(min_request_elems)
        self.note = ""
        self.pool_ops = 0
        self.adopted = 0
        self._procs = []
        self._pipes = []
        self._barrier = None
        self._blocks = {}  # key -> (SharedArray, shm)
        self._key_of = {}  # id(SharedArray) -> key
        self._scratch = {}  # (kind, dtype_str) -> [shm, view, cap]
        self._seq = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self._procs) and not self._closed

    @property
    def workers(self) -> int:
        return len(self._procs)

    def __enter__(self) -> "ShardedSession":
        global _CURRENT
        if _CURRENT is not None:
            raise UsageError("sharded sessions do not nest")
        if self.requested_workers >= 2:
            self._spawn()
        else:
            self.note = "workers<=1: sharding disabled, serial kernels"
        _CURRENT = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _CURRENT
        if _CURRENT is self:
            _CURRENT = None
        self.shutdown()

    def _spawn(self) -> None:
        try:
            ctx = mp.get_context("fork")
            # The resource tracker must exist *before* the fork: fork-mode
            # semaphores/pipes never start it, so without this the first
            # SharedMemory would be created after the workers exist and each
            # worker's attach would lazily spawn a private tracker whose
            # registrations the parent's unlink can never balance.
            resource_tracker.ensure_running()
            self._barrier = ctx.Barrier(self.requested_workers + 1)
            for rank in range(self.requested_workers):
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(rank, self.requested_workers, recv, self._barrier),
                    daemon=True,
                )
                proc.start()
                recv.close()
                self._procs.append(proc)
                self._pipes.append(send)
            # Per-op changed-count slots, one per worker (created once).
            self._ensure_scratch("res", np.dtype(np.int64), self.requested_workers)
        except (OSError, ValueError, PermissionError) as exc:
            self.note = f"shard pool unavailable ({exc}); serial kernels"
            self._teardown_procs()

    def shutdown(self) -> None:
        """Detach every adopted array (copy back to private memory),
        close all mappings, and stop the pool.  Safe to call twice; runs
        on normal exit, on any exception (``UnrecoverableLossError``
        included), and from the atexit net."""
        if self._closed:
            return
        self._closed = True
        for arr, _shm in self._blocks.values():
            arr.data = np.array(arr.data, copy=True)
        for pipe in self._pipes:
            with contextlib.suppress(OSError, ValueError):
                pipe.send(("exit",))
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        for pipe in self._pipes:
            with contextlib.suppress(OSError):
                pipe.close()
        for _arr, shm in self._blocks.values():
            with contextlib.suppress(BufferError, OSError):
                shm.close()
        for rec in self._scratch.values():
            rec[1] = None
            with contextlib.suppress(BufferError, OSError):
                rec[0].close()
        self._blocks.clear()
        self._key_of.clear()
        self._scratch.clear()
        self._teardown_procs()

    def _teardown_procs(self) -> None:
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs = []
        self._pipes = []
        self._barrier = None

    # -- segment plumbing --------------------------------------------------

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{self._seq}"
        self._seq += 1
        return shared_memory.SharedMemory(name=name, create=True, size=max(int(nbytes), 1))

    def _broadcast(self, cmd) -> None:
        for pipe in self._pipes:
            pipe.send(cmd)
        self._barrier.wait(timeout=_SYNC_TIMEOUT)

    def _ensure_scratch(self, kind: str, dtype: np.dtype, n: int) -> np.ndarray:
        slot = (kind, dtype.str)
        rec = self._scratch.get(slot)
        if rec is None or rec[2] < n:
            cap = max(1024, 1 << (max(int(n), 1) - 1).bit_length())
            shm = self._new_segment(cap * dtype.itemsize)
            try:
                # Workers attach (and drop any smaller predecessor)
                # before the barrier releases us to unlink.
                self._broadcast(("scratch", kind, dtype.str, shm.name, cap))
            finally:
                shm.unlink()
            if rec is not None:
                rec[1] = None
                with contextlib.suppress(BufferError, OSError):
                    rec[0].close()
            rec = [shm, np.ndarray((cap,), dtype=dtype, buffer=shm.buf), cap]
            self._scratch[slot] = rec
        return rec[1]

    # -- adoption ----------------------------------------------------------

    def adopt(self, arr) -> bool:
        """Back ``arr``'s storage with a shared segment the pool is
        attached to.  Returns True when adopted; small arrays and
        degraded sessions are left untouched (and report False)."""
        if not self.active or arr.data.shape[0] < self.min_array_elems:
            return False
        if self._key_of.get(id(arr)) is not None:
            return True
        data = arr.data
        shm = self._new_segment(data.nbytes)
        key = self._seq  # unique per session (monotonic)
        try:
            self._broadcast(
                (
                    "adopt",
                    key,
                    shm.name,
                    data.dtype.str,
                    int(data.shape[0]),
                    int(arr.block),
                    int(arr.machine.threads_per_node),
                    int(arr.machine.nodes),
                )
            )
        finally:
            shm.unlink()
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[:] = data
        arr.data = view
        self._blocks[key] = (arr, shm)
        self._key_of[id(arr)] = key
        self.adopted += 1
        return True

    def covers(self, arr) -> bool:
        """True when ``arr`` was adopted by this (still active) session."""
        if not self.active:
            return False
        key = self._key_of.get(id(arr))
        return key is not None and self._blocks[key][0] is arr

    # -- sharded operations (return None = caller runs the serial path) ---

    def _request_key(self, arr, n: int):
        if n < self.min_request_elems or not self.covers(arr):
            return None
        return self._key_of[id(arr)]

    def try_scatter_min(self, arr, idx: np.ndarray, vals: np.ndarray):
        """Pool-execute a ``scatter_min``; returns the changed count, or
        ``None`` when the call is below threshold / not covered (the
        serial kernel is bit-identical either way)."""
        vals = np.asarray(vals)
        if vals.dtype != arr.data.dtype or vals.dtype.kind not in "iu":
            return None
        key = self._request_key(arr, idx.size)
        if key is None:
            return None
        n = int(idx.size)
        self._ensure_scratch("idx", np.dtype(np.int64), n)[:n] = idx
        self._ensure_scratch("val", vals.dtype, n)[:n] = vals
        self._broadcast(("scatter_min", key, n, vals.dtype.str))
        self.pool_ops += 1
        res = self._scratch[("res", _I8)][1]
        return int(res[: self.workers].sum())

    def try_scatter_store_min(self, arr, idx: np.ndarray, vals: np.ndarray):
        """Pool-execute a ``scatter_store_min`` (int64 adjudication
        domain, exactly like the serial fast path); ``None`` = run
        serial."""
        key = self._request_key(arr, idx.size)
        if key is None:
            return None
        vals64 = np.asarray(vals).astype(np.int64)
        n = int(idx.size)
        self._ensure_scratch("idx", np.dtype(np.int64), n)[:n] = idx
        self._ensure_scratch("val", vals64.dtype, n)[:n] = vals64
        self._broadcast(("scatter_store_min", key, n, vals64.dtype.str))
        self.pool_ops += 1
        res = self._scratch[("res", _I8)][1]
        return int(res[: self.workers].sum())

    def try_gather(self, arr, idx: np.ndarray):
        """Pool-execute a bounds-checked ``gather``; each worker serves
        the requests that hit its node blocks.  ``None`` = run serial."""
        key = self._request_key(arr, idx.size)
        if key is None:
            return None
        n = int(idx.size)
        self._ensure_scratch("idx", np.dtype(np.int64), n)[:n] = idx
        out = self._ensure_scratch("out", arr.data.dtype, n)
        self._broadcast(("gather", key, n, arr.data.dtype.str))
        self.pool_ops += 1
        return out[:n].copy()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requested_workers": self.requested_workers,
            "workers": self.workers,
            "adopted_arrays": self.adopted,
            "pool_ops": self.pool_ops,
            "note": self.note,
        }


def sharded_session(workers, **kwargs):
    """``ShardedSession`` when ``workers >= 2``, else a no-op context —
    the CLI's ``--shard-workers`` plumbs straight through this."""
    if int(workers) >= 2:
        return ShardedSession(int(workers), **kwargs)
    return contextlib.nullcontext(None)


@atexit.register
def _shutdown_current() -> None:  # pragma: no cover - interpreter exit
    if _CURRENT is not None:
        _CURRENT.shutdown()
