"""Wall-clock performance engine (simulator speed, not modeled speed).

Everything in this package makes the *simulator* faster while leaving
the *simulation* untouched: modeled times, category breakdowns,
counters, and algorithm results are bit-identical with the package's
optimizations on or off (see :mod:`repro.perf.golden` for the enforced
contract and ``docs/performance.md`` for the inventory).

* :mod:`~repro.perf.state` — the fast/legacy engine switch;
* :mod:`~repro.perf.arena` — pooled scratch buffers for hot loops;
* :mod:`~repro.perf.derived` — memoized pure derived artifacts
  (schedules, level splits, t' grids, distribution offsets);
* :mod:`~repro.perf.fanout` — deterministic process-pool fan-out for
  soak iterations, tuner probes, and benchmark grids;
* :mod:`~repro.perf.golden` — pinned-scenario fingerprints for the
  bit-identity regression suite;
* :mod:`~repro.perf.bench` — the ``BENCH_wallclock.json`` harness
  behind ``python -m repro perf``.
"""

from .arena import BufferArena, global_arena
from .derived import clear_derived_caches, derived_cache_stats
from .fanout import available_cpus, fanout_map, resolve_workers
from .state import fast_engine_enabled, legacy_engine, set_fast_engine

__all__ = [
    "BufferArena",
    "global_arena",
    "clear_derived_caches",
    "derived_cache_stats",
    "available_cpus",
    "fanout_map",
    "resolve_workers",
    "fast_engine_enabled",
    "legacy_engine",
    "set_fast_engine",
]
