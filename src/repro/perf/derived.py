"""Memoization of pure derived artifacts (the runtime's plan cache).

The simulator re-derives the same value objects thousands of times per
run: communication schedules (``circular_schedule`` / ``linear_schedule``
orders), Algorithm 1 ``schedule_plan`` level splits, the autotuner's
``t'`` candidate grids, and the even-split offset vectors that define
graph distribution.  All of them are pure functions of small scalar
arguments, so they are cached process-wide here.

Rules (documented in ``docs/performance.md``):

* only *pure* artifacts are memoized — anything derived from request
  data, clocks, RNG streams, or fault state is recomputed every time;
* cached arrays are returned **read-only** (``writeable=False``) so an
  aliasing bug surfaces as an immediate ``ValueError`` instead of silent
  cross-run corruption; callers that need to mutate must copy;
* every cache honors the legacy engine: with
  :func:`repro.perf.state.fast_engine_enabled` off, the underlying
  builder runs unconditionally, reproducing pre-optimization behaviour
  (the artifacts are value-identical either way).

Use :func:`memoized` to register a builder; :func:`clear_derived_caches`
drops everything (the golden suite calls it when switching engines).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List

import numpy as np

from . import state

__all__ = ["memoized", "clear_derived_caches", "derived_cache_stats", "freeze"]

_REGISTRY: List = []  # the lru-wrapped functions, for clear/stats
_NAMES: Dict[int, str] = {}


def freeze(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only (cached artifacts must not be mutated)."""
    arr.setflags(write=False)
    return arr


def memoized(maxsize: int = 256, name: str | None = None) -> Callable:
    """Decorator: lru-cache a pure derived-artifact builder.

    The wrapper bypasses the cache entirely while the legacy engine is
    active, so the memoization layer is invisible to golden comparisons
    of the pre-optimization engine.
    """

    def deco(fn: Callable) -> Callable:
        cached = functools.lru_cache(maxsize=maxsize)(fn)
        _REGISTRY.append(cached)
        _NAMES[id(cached)] = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args):
            if not state.fast_engine_enabled():
                return fn(*args)
            return cached(*args)

        wrapper.cache_clear = cached.cache_clear  # type: ignore[attr-defined]
        wrapper.cache_info = cached.cache_info  # type: ignore[attr-defined]
        return wrapper

    return deco


def clear_derived_caches() -> None:
    """Drop every registered derived-artifact cache."""
    for cached in _REGISTRY:
        cached.cache_clear()


def derived_cache_stats() -> Dict[str, dict]:
    """Hit/miss accounting per registered cache (for the bench report)."""
    stats = {}
    for cached in _REGISTRY:
        info = cached.cache_info()
        stats[_NAMES[id(cached)]] = {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
        }
    return stats
