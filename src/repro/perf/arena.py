"""Pooled scratch buffers for the simulator's hot loops.

The collectives and the integrity monitor burn a surprising share of
their wall time in the NumPy allocator: every round re-creates the same
presence masks, cumulative-sum scratch, and key buffers, page-faults
them in, and throws them away.  :class:`BufferArena` keeps those arrays
alive across rounds, keyed by ``(backend, dtype, size-class)`` — the
size class is the next power of two, so a request for 80 001 elements
reuses the buffer leased for 70 000 a round earlier.  The backend
component is the active kernel backend (:mod:`repro.kernels`): backends
own their scratch pools outright, so a mid-process backend switch (the
golden cross-backend suite does this constantly) can never be served a
buffer shaped by another backend's take/give pattern — the stale-dtype
reuse bug class is keyed away rather than policed.

Strictly wall-clock machinery: leased buffers never hold modeled state,
never feed the cost model, and every user overwrites the slice it takes
(or asks for ``clear=True``), so modeled times and results are
bit-identical with the arena on or off.  With the legacy engine active
(:mod:`repro.perf.state`) every lease falls back to a fresh allocation,
reproducing the pre-optimization allocation pattern exactly.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List

import numpy as np

from ..kernels import state as kernel_state
from . import state

__all__ = ["BufferArena", "global_arena", "lease"]

#: Buffers above this many bytes are not pooled — they would pin large
#: allocations for the life of the process (soak campaigns run for
#: hours); the allocator handles rare huge requests fine.
_MAX_POOLED_BYTES = 1 << 26  # 64 MiB
#: Retained buffers per (dtype, size-class) bucket.  The collectives
#: lease at most a handful of scratch arrays at once.
_MAX_PER_BUCKET = 4


def _size_class(n: int) -> int:
    """Smallest power of two >= n (and >= 64, to merge tiny buckets)."""
    return 1 << max(6, int(n - 1).bit_length()) if n > 1 else 64


class BufferArena:
    """A pool of reusable 1-D scratch arrays keyed by (dtype, size-class)."""

    def __init__(self) -> None:
        self._pools: Dict[tuple, List[np.ndarray]] = {}
        self.leases = 0
        self.reuses = 0

    def take(self, n: int, dtype, clear: bool = False) -> np.ndarray:
        """A scratch array of exactly ``n`` elements (a view into a
        pooled size-class buffer).  Contents are arbitrary unless
        ``clear=True`` zeroes the slice.  Pair with :meth:`give` (or use
        :meth:`lease`)."""
        n = int(n)
        dt = np.dtype(dtype)
        self.leases += 1
        if not state.fast_engine_enabled() or n * dt.itemsize > _MAX_POOLED_BYTES:
            return np.zeros(n, dtype=dt) if clear else np.empty(n, dtype=dt)
        key = (kernel_state.current_name() or "numpy", dt.str, _size_class(n))
        pool = self._pools.get(key)
        if pool:
            base = pool.pop()
            self.reuses += 1
        else:
            base = np.empty(key[2], dtype=dt)
        view = base[:n]
        if clear:
            view.fill(0)
        return view

    def give(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`take` to the pool."""
        base = buf.base if buf.base is not None else buf
        if not isinstance(base, np.ndarray) or base.ndim != 1:
            return
        # Returned to the *currently active* backend's pool: take and
        # give always agree because a lease never outlives a backend
        # switch (the context managers guarantee it).
        backend = kernel_state.current_name() or "numpy"
        key = (backend, base.dtype.str, base.shape[0])
        if key[2] != _size_class(key[2]):
            return  # not one of ours (e.g. legacy-engine fresh allocation)
        pool = self._pools.setdefault(key, [])
        if len(pool) < _MAX_PER_BUCKET:
            pool.append(base)

    @contextlib.contextmanager
    def lease(self, n: int, dtype, clear: bool = False):
        buf = self.take(n, dtype, clear=clear)
        try:
            yield buf
        finally:
            self.give(buf)

    def clear(self) -> None:
        self._pools.clear()

    def stats(self) -> dict:
        pooled = sum(len(v) for v in self._pools.values())
        return {
            "leases": self.leases,
            "reuses": self.reuses,
            "buckets": len(self._pools),
            "pooled_buffers": pooled,
        }


_GLOBAL = BufferArena()


def global_arena() -> BufferArena:
    """The process-wide arena the runtime's helpers share."""
    return _GLOBAL


def lease(n: int, dtype, clear: bool = False):
    """Shorthand for ``global_arena().lease(...)``."""
    return _GLOBAL.lease(n, dtype, clear=clear)
