"""Engine switch between the optimized and the legacy (pre-perf) paths.

Every wall-clock optimization in this tree — pooled scratch buffers,
memoized derived artifacts, the bincount/cumsum rewrites of the
``np.unique`` hot spots — is gated on :func:`fast_engine_enabled` and
keeps its original implementation alive as the *legacy engine*.  That
buys two things:

* the **golden-trace contract** is enforceable: the regression suite
  runs every pinned scenario under both engines and byte-compares the
  modeled breakdowns, counters, and algorithm results (they must be
  bit-identical — wall-clock optimizations never touch charged time);
* the **speedup is measurable**: ``python -m repro perf`` times the same
  workload under both engines in one process, so ``BENCH_wallclock.json``
  reports a real before/after ratio instead of trusting a stale recorded
  number from different hardware.

The switch is process-global (the simulator is single-threaded; the
fan-out layer parallelizes across *processes*, each of which inherits
the default).  ``REPRO_PERF_DISABLE=1`` in the environment starts a
process on the legacy engine.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["fast_engine_enabled", "legacy_engine", "set_fast_engine"]

_fast = os.environ.get("REPRO_PERF_DISABLE", "") not in ("1", "true", "yes")


def fast_engine_enabled() -> bool:
    """True when the optimized hot paths are active (the default)."""
    return _fast


def set_fast_engine(enabled: bool) -> bool:
    """Flip the engine; returns the previous setting."""
    global _fast
    previous = _fast
    _fast = bool(enabled)
    return previous


@contextlib.contextmanager
def legacy_engine():
    """Run the body on the pre-optimization code paths.

    Used by the golden bit-identity suite and the wall-clock benchmark;
    never needed in production code.  Also clears the memoization caches
    on entry *and* exit so neither engine sees artifacts produced while
    the other was active (the artifacts are value-identical either way;
    clearing just keeps cache-hit accounting honest).
    """
    from .derived import clear_derived_caches

    previous = set_fast_engine(False)
    clear_derived_caches()
    try:
        yield
    finally:
        set_fast_engine(previous)
        clear_derived_caches()
