#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the captured benchmark results.

Usage:
    pytest benchmarks/ --benchmark-only       # populates benchmarks/results/
    python scripts/generate_experiments.py    # rewrites EXPERIMENTS.md

The per-figure tables come verbatim from ``benchmarks/results/*.txt``;
the commentary blocks below are maintained here.
"""

from __future__ import annotations

import datetime
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
RESULTS = ROOT / "benchmarks" / "results"

ORDER = [
    ("fig_2.txt", "Fig. 2 — naive CC-UPC vs CC-SMP", """
Paper: the literal UPC translation is drastically slower, "3 orders of
magnitude slower than CC-SMP" normalized per processor.  Measured: ~3.8
orders normalized (the model's fine-grained round-trip + congestion
charges land slightly above the paper's headline; same log-scale gap,
same flat ratio across densities)."""),
    ("fig_3.txt", "Fig. 3 — impact of communication coalescing", """
Paper: with unoptimized collectives and quicksort grouping, rewritten CC
is ~70x faster than the naive translation, and SV is slower than CC
("more collective calls in one iteration").  Measured: ~40-50x for CC
(same order of magnitude, same mechanism: message counts drop from one
per element to one per thread pair) and SV consistently 2.5-3.5x slower
than CC."""),
    ("fig_4.txt", "Fig. 4 — CC vs t' on one SMP node", """
Paper: collectives beat CC-SMP already at t'=1; best t' = 12 (smallest
input) / 18 (larger inputs); best configuration "nearly twice as fast".
Measured: t'=1 beats SMP on all three inputs, U-shaped curves with best
t' = 16, best speedup ~1.23x.  Known delta: the depth of the U is
shallower than the paper's ~2x — our cold-miss-bounded serve leaves less
miss latency for t' to recover (documented in DESIGN.md)."""),
    ("fig_5.txt", "Fig. 5 — cumulative optimizations (random graph)", """
Paper: compact improves nearly all categories; circular halves Comm;
localcpy halves Copy; id slashes the target-id Work.  Measured: Comm
-1.95x at circular, Copy -2.5x at localcpy, Work -3.4x at id, compact
improves every category; total improves monotonically, optimized/base
~4.5x."""),
    ("fig_6.txt", "Fig. 6 — cumulative optimizations (hybrid graph)", """
Paper: "similar impact is also observed for the hybrid graph"; the
scale-free hubs create neither load imbalance (edges are split evenly)
nor communication hotspots (one message per thread pair).  Measured:
breakdown within a few percent of Fig. 5's on every bar — hubs are
invisible, as claimed."""),
    ("fig_7.txt", "Fig. 7 — optimized CC scaling, m/n = 4", """
Paper: best at 8 threads/node — 2.2x over CC-SMP and ~9x over the best
sequential; 16 threads/node degrades ~10x (the 256-thread AlltoAll
burst).  Measured: best at 8 threads/node — 1.66x over SMP, 11.5x over
sequential, 12.3x degradation at 16 threads/node."""),
    ("fig_8.txt", "Fig. 8 — optimized CC scaling, m/n = 10", """
Paper: best at 8 threads/node — 3x over CC-SMP, ~11x over sequential.
Measured: best at 8 threads/node — 2.3x over SMP, ~21x over sequential
(our sequential baseline scales linearly in m, making the denser input
relatively kinder to the cluster than the paper's baseline was)."""),
    ("fig_9.txt", "Fig. 9 — optimized MST scaling, m/n = 4", """
Paper: best speedup 5.5 at 8 threads/node; MST-SMP "either slower or
only slightly faster" than sequential Kruskal due to the 100M-lock
overhead.  Measured: best at 8 threads/node; SMP/Kruskal = 0.93 (the
lock convoy + coherence model reproduces the headline equivalence);
best speedup ~14x.  Known delta: the collective MST overshoots the
paper's 5.5 by ~2x — our SetDMin Boruvka is relatively as cheap as our
CC, while the authors' MST carried more implementation overhead
(documented in DESIGN.md)."""),
    ("fig_10.txt", "Fig. 10 — optimized MST scaling, m/n = 10", """
Paper: best speedup 10.2 at 8 threads/node.  Measured: best at 8
threads/node, ~21x (same overshoot factor as Fig. 9; every qualitative
relation — optimum location, SMP~Kruskal, 16-thread collapse — holds)."""),
    ("sec_iii.txt", "Section III — analytic estimates", """
Paper: with Infiniband (190 ns) and DDR3 (9 ns) constants, "we estimate
CC-UPC is over 20 times slower than CC-SMP" for data access.  Measured:
the same formula evaluates to 17.5x with the quoted constants (the
paper rounds up); the simulator's HPS-cluster preset shows a much larger
per-access gap, consistent with its Fig. 2 behaviour."""),
    ("sec_vi_(hybrid).txt", "Section VI — hybrid-graph summary", """
Paper: on hybrid graphs the best configuration reaches CC 2.5x/2.8x over
SMP and MST 5.1x/6.7x over sequential.  Measured: CC 1.7x/2.0x over SMP
(slightly shallower, tracking Fig. 7/8); MST 14x/22x (the Fig. 9/10
overshoot).  The paper's qualitative point — hybrid results mirror
random-graph results, hubs cost nothing — holds exactly."""),
]

HEADER = """# EXPERIMENTS — paper vs measured

Every figure of the paper's evaluation (its evaluation has no numbered
tables; Figure 1 is source code, reproduced as
`examples/fig1_code_comparison.py`), regenerated by `benchmarks/` on the
simulated cluster.  *Measured* numbers are **modeled simulated-cluster
times** (see DESIGN.md for the substitution argument); inputs are the
paper's graphs scaled ~1000x with densities preserved and machines
recalibrated (`repro.core.calibration`).

Regenerate everything with:

```bash
pytest benchmarks/ --benchmark-only          # default REPRO_BENCH_SCALE=0.5
python scripts/generate_experiments.py
```

## Summary scorecard

| Experiment | Paper | Measured | Verdict |
|---|---|---|---|
| Fig. 2 normalized naive/SMP gap | ~3 orders of magnitude | 3.8 orders | reproduced |
| Fig. 3 coalescing speedup | ~70x | ~43x | reproduced (same order) |
| Fig. 3 SV slower than CC | yes | 2.5x slower | reproduced |
| Fig. 4 t'=1 already beats SMP | yes | yes (all 3 inputs) | reproduced |
| Fig. 4 best t' | 12-18 | 16 | reproduced |
| Fig. 4 best gain over SMP | ~2x | 1.23x | shape only (shallower) |
| Fig. 5 Comm reduction (circular) | ~2x | 1.95x | reproduced |
| Fig. 5 Copy reduction (localcpy) | ~2x | 2.5x | reproduced |
| Fig. 7 best threads/node | 8 | 8 | reproduced |
| Fig. 7 speedup vs SMP / seq | 2.2x / ~9x | 1.66x / 11.5x | reproduced |
| Fig. 7-8 degradation at 16 thr/node | ~10x | 9-12x | reproduced |
| Fig. 8 speedup vs SMP | 3.0x | 2.3x | reproduced |
| Fig. 9-10 MST-SMP vs Kruskal | ~1 (lock overhead) | 0.91-0.93 | reproduced |
| Fig. 9 / 10 best MST speedup | 5.5x / 10.2x | ~14x / ~21x | shape only (overshoots ~2x) |
| Sec. III per-access estimate | >20x | 17.5x | reproduced |
| Sec. VI hybrid = random behaviour | yes | yes | reproduced |

Known deltas (Fig. 4 depth, MST magnitudes) are analyzed in DESIGN.md's
calibration section; both preserve every ordering and crossover the
paper reports.
"""


def main() -> int:
    if not RESULTS.exists():
        print("run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    parts = [HEADER]
    for filename, title, commentary in ORDER:
        path = RESULTS / filename
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        if path.exists():
            parts.append("\n```\n" + path.read_text().strip() + "\n```\n")
        else:
            parts.append("\n*(no captured result — run the benchmarks)*\n")
    parts.append(
        "\n## Ablations beyond the paper\n\n"
        "`bench_ablation_schedule_depth.py` (Algorithm 1 depth 0-3: each level\n"
        "cuts exactly-simulated cache misses), `bench_ablation_sort.py`\n"
        "(count sort vs quicksort end-to-end), `bench_ablation_circular.py`\n"
        "(linear-order incast in isolation), and `bench_micro_collectives.py`\n"
        "(wall-clock throughput of the simulator itself).\n"
    )
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("".join(parts))
    stamp = datetime.date.today().isoformat()
    print(f"wrote {out} ({stamp})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
