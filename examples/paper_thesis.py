#!/usr/bin/env python
"""The paper's thesis, end to end.

Section I closes with the paper's core claim: "instead of taking the
approach of communication-efficient algorithms that have one processor
work on the large contracted inputs to reduce communication rounds, it
is faster to coordinate multiple processors to process the same input in
parallel."

This example runs the whole argument on one screen:

1. connected components three ways — round-minimizing CGM, the paper's
   collectives, sequential — showing CGM's tiny message count and large
   time;
2. list ranking (the paper's own motivating example) with Wyllie vs CGM
   contraction;
3. the BFS contrast: level-synchronous rounds track the diameter, while
   CC's grafting iterations do not;
4. the future-work fix (hierarchical collectives) resurrecting the
   16-threads-per-node configuration the paper had to abandon.

Run:  python examples/paper_thesis.py
"""

from __future__ import annotations

import repro
from repro.bench import banner, format_table
from repro.bfs import solve_bfs_collective
from repro.graph import path_graph
from repro.listrank import random_list, solve_ranks_cgm, solve_ranks_sequential, solve_ranks_wyllie


def part1_cc(n: int) -> None:
    print("\n== 1. rounds are not the bottleneck (CC) ==")
    g = repro.random_graph(n, 4 * n, seed=1)
    cluster = repro.cluster_for_input(n, 16, 8)
    rows = []
    for label, kwargs in [
        ("CGM (O(log p) rounds)", dict(impl="cgm")),
        ("collectives (paper)", dict(impl="collective", tprime=2)),
        ("sequential", dict(impl="sequential")),
    ]:
        machine = repro.sequential_for_input(n) if label == "sequential" else cluster
        res = repro.connected_components(g, machine, **kwargs)
        rows.append([label, f"{res.info.sim_time_ms:.3f}",
                     f"{res.info.trace.counters.remote_messages:,}"])
    print(format_table(["CC implementation", "sim ms", "remote messages"], rows))
    print("(CGM sends ~10,000x fewer messages and still loses: its log p")
    print(" merge rounds each put a sequential union-find on the critical path)")


def part2_listrank(n: int) -> None:
    print("\n== 2. list ranking (the paper's Section I example) ==")
    lst = random_list(n, seed=2)
    cluster = repro.cluster_for_input(n, 16, 8)
    rows = []
    for label, run in [
        ("Wyllie + collectives", lambda: solve_ranks_wyllie(lst, cluster, tprime=2)),
        ("CGM contraction", lambda: solve_ranks_cgm(lst, cluster, tprime=2)),
        ("sequential chase", lambda: solve_ranks_sequential(
            lst, repro.sequential_for_input(n))),
    ]:
        _, info = run()
        rows.append([label, f"{info.sim_time_ms:.3f}", info.iterations])
    print(format_table(["list ranking", "sim ms", "rounds"], rows))


def part3_bfs(n: int) -> None:
    print("\n== 3. why CC, not BFS, is the interesting testbed ==")
    cluster = repro.cluster_for_input(n, 16, 8)
    rows = []
    for label, g in [
        ("random (diameter ~ log n)", repro.random_graph(n, 4 * n, seed=3)),
        (f"path (diameter {n - 1})", path_graph(n)),
    ]:
        _, bfs_info = solve_bfs_collective(g, 0, cluster, tprime=2)
        cc = repro.connected_components(g, cluster, tprime=2)
        rows.append([label, bfs_info.iterations, cc.info.iterations])
    print(format_table(["input", "BFS rounds (O(d))", "CC iterations (polylog)"], rows))


def part4_hierarchical(n: int) -> None:
    print("\n== 4. the future-work fix: hierarchical collectives ==")
    g = repro.random_graph(n, 4 * n, seed=4)
    flat = repro.OptimizationFlags.all()
    hier = flat.with_(hierarchical=True)
    rows = []
    for t in (8, 16):
        machine = repro.cluster_for_input(n, 16, t)
        tp = max(1, 16 // t)
        a = repro.connected_components(g, machine, opts=flat, tprime=tp)
        b = repro.connected_components(g, machine, opts=hier, tprime=tp)
        rows.append([f"16x{t} (s={16 * t})", f"{a.info.sim_time_ms:.3f}",
                     f"{b.info.sim_time_ms:.3f}"])
    print(format_table(["cluster", "flat ms", "hierarchical ms"], rows))
    print("(the s=256 collapse the paper measured disappears once the")
    print(" AlltoAll involves only p processes — their Section VI proposal)")


def main() -> None:
    print(banner("the SC'10 thesis, regenerated"))
    n = 30_000
    part1_cc(n)
    part2_listrank(n)
    part3_bfs(5_000)
    part4_hierarchical(n)


if __name__ == "__main__":
    main()
