#!/usr/bin/env python
"""Scaling study: sweep cluster shapes and input sizes.

Goes beyond the paper's fixed 16-node cluster: how do the optimized CC
and MST scale with node count, and where does the all-to-all thread
collapse start?  Useful as a template for running your own parameter
sweeps with the library.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import repro
from repro.bench import banner, format_table


def node_sweep(n: int = 50_000) -> None:
    g = repro.random_graph(n, 4 * n, seed=9)
    gw = repro.with_random_weights(g, seed=10)
    seq_cc = repro.connected_components(g, repro.sequential_for_input(n), impl="sequential")
    seq_mst = repro.minimum_spanning_forest(gw, repro.sequential_for_input(n), impl="kruskal")

    rows = []
    for nodes in (1, 2, 4, 8, 16, 32):
        machine = repro.cluster_for_input(n, nodes, 8)
        cc = repro.connected_components(g, machine, tprime=2)
        mst = repro.minimum_spanning_forest(gw, machine, tprime=2)
        rows.append(
            [
                f"{nodes}x8",
                f"{cc.info.sim_time_ms:.3f}",
                f"{seq_cc.info.sim_time / cc.info.sim_time:.2f}x",
                f"{mst.info.sim_time_ms:.3f}",
                f"{seq_mst.info.sim_time / mst.info.sim_time:.2f}x",
            ]
        )
    print()
    print(format_table(["cluster", "CC ms", "CC vs seq", "MST ms", "MST vs seq"], rows))


def thread_collapse(n: int = 50_000) -> None:
    g = repro.random_graph(n, 4 * n, seed=9)
    rows = []
    for t in (4, 8, 12, 16):
        machine = repro.cluster_for_input(n, 16, t)
        cc = repro.connected_components(g, machine, tprime=max(1, 16 // t))
        setup = cc.info.breakdown()["Setup"]
        rows.append(
            [f"16x{t} (s={16 * t})", f"{cc.info.sim_time_ms:.3f}", f"{setup * 1e3:.3f}"]
        )
    print()
    print(format_table(["cluster", "CC ms", "Setup ms/thread"], rows))
    print("(the s=256 row shows the paper's AlltoAll incast collapse)")


def input_sweep() -> None:
    rows = []
    for n in (10_000, 20_000, 50_000, 100_000):
        g = repro.random_graph(n, 4 * n, seed=11)
        machine = repro.cluster_for_input(n, 16, 8)
        cc = repro.connected_components(g, machine, tprime=2)
        rows.append([f"{n:,}", f"{4 * n:,}", f"{cc.info.sim_time_ms:.3f}",
                     f"{cc.info.iterations}"])
    print()
    print(format_table(["n", "m", "CC ms", "iterations"], rows))


def main() -> None:
    print(banner("scaling study: nodes, threads, input size"))
    print("\n== node-count sweep (8 threads/node) ==")
    node_sweep()
    print("\n== threads-per-node sweep on 16 nodes (the collapse) ==")
    thread_collapse()
    print("\n== input-size sweep (16x8) ==")
    input_sweep()


if __name__ == "__main__":
    main()
