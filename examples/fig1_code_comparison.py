#!/usr/bin/env python
"""The paper's Figure 1: CC-SMP vs CC-UPC, side by side.

Figure 1's point is that the SMP source and its UPC translation are
"almost identical except for the names of a few language constructs" —
and that this literal port is exactly what performs three orders of
magnitude worse.  This example prints the reconstructed pseudo-code
pair, then runs *both* semantics through the library on the same input
to show (a) they compute the same labels and (b) what the innocent
construct renaming costs.

Run:  python examples/fig1_code_comparison.py
"""

from __future__ import annotations

import textwrap

import numpy as np

import repro
from repro.bench import banner

CC_SMP = """
// CC-SMP (one node, OpenMP-style)
int D[n];
for (i = 0; i < n; i++) D[i] = i;
do {
    graft = 0;
    pardo (e = 0; e < m; e++) {          // threads split the edge list
        (u, v) = E[e];
        if (D[u] < D[v] && D[v] == D[D[v]]) { D[D[v]] = D[u]; graft = 1; }
        if (D[v] < D[u] && D[u] == D[D[u]]) { D[D[u]] = D[v]; graft = 1; }
    }
    pardo (i = 0; i < n; i++)            // asynchronous short-cutting
        while (D[i] != D[D[i]]) D[i] = D[D[i]];
} while (graft);
"""

CC_UPC = """
// CC-UPC (literal translation; differences underlined in the paper)
shared [nlocal] int D[n];                 // ___shared___ blocked array
upc_forall (i = 0; i < n; i++; &D[i]) D[i] = i;
do {
    graft = 0;
    upc_forall (e = 0; e < m; e++; e) {   // ___upc_forall___
        (u, v) = E[e];
        if (D[u] < D[v] && D[v] == D[D[v]]) { D[D[v]] = D[u]; graft = 1; }
        if (D[v] < D[u] && D[u] == D[D[u]]) { D[D[u]] = D[v]; graft = 1; }
    }
    upc_forall (i = 0; i < n; i++; &D[i])
        while (D[i] != D[D[i]]) D[i] = D[D[i]];
} while (graft);                          // every D[...] may now be remote!
"""


def side_by_side(left: str, right: str, width: int = 62) -> str:
    l_lines = textwrap.dedent(left).strip().splitlines()
    r_lines = textwrap.dedent(right).strip().splitlines()
    height = max(len(l_lines), len(r_lines))
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    return "\n".join(f"{a:<{width}s}| {b}" for a, b in zip(l_lines, r_lines))


def main() -> None:
    print(banner("Figure 1: the same algorithm, two memory models"))
    print()
    print(side_by_side(CC_SMP, CC_UPC))

    n = 20_000
    g = repro.random_graph(n, 4 * n, seed=5)
    smp = repro.connected_components(g, repro.smp_for_input(n, 16), impl="smp")
    upc = repro.connected_components(g, repro.cluster_for_input(n, 16, 16), impl="naive")
    assert np.array_equal(smp.labels, upc.labels)

    print(f"\nsame labels on both ({smp.num_components} components), but:")
    print(f"  CC-SMP  (1 node x 16):   {smp.info.sim_time_ms:12.3f} ms simulated")
    print(f"  CC-UPC  (16 nodes x 16): {upc.info.sim_time_ms:12.3f} ms simulated")
    raw = upc.info.sim_time / smp.info.sim_time
    print(f"  raw slowdown: {raw:.0f}x; normalized per processor: {raw * 16:.0f}x"
          f" (~{np.log10(raw * 16):.1f} orders of magnitude — the paper's Fig. 2)")
    fine = upc.info.trace.counters.fine_remote_accesses
    print(f"  cause: {fine:,} individual blocking remote accesses"
          " — every innocent-looking D[...] became a network round trip.")


if __name__ == "__main__":
    main()
