#!/usr/bin/env python
"""Scenario: community structure of a hub-heavy social-style network.

The paper motivates hybrid (scale-free + random) inputs with real-world
graphs whose hub vertices threaten load balance.  This example builds
such a network with planted communities plus a scale-free hub core,
finds its connected components on the simulated cluster, and shows the
two properties the paper highlights:

* edge-based work splitting keeps the hubs from unbalancing threads;
* the ``offload`` optimization defuses the vertex-0 request hotspot.

Run:  python examples/social_network_components.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench import banner, format_table
from repro.graph import component_sizes, disjoint_components_graph, hybrid_graph


def build_social_network(seed: int = 7) -> repro.EdgeList:
    """Planted communities (dense blobs) + a hub-heavy global layer that
    connects only some of them."""
    communities = disjoint_components_graph(blocks=40, block_size=500, seed=seed)
    n = communities.n
    overlay = hybrid_graph(n, 2 * n, seed=seed + 1)
    # Keep the overlay sparse over the low-numbered half so several
    # communities stay isolated (multiple components survive).
    keep = (overlay.u < n // 2) & (overlay.v < n // 2)
    u = np.concatenate([communities.u, overlay.u[keep]])
    v = np.concatenate([communities.v, overlay.v[keep]])
    return repro.EdgeList(n, u, v)


def main() -> None:
    print(banner("social-network components on the simulated cluster"))
    g = build_social_network()
    machine = repro.cluster_for_input(g.n, nodes=16, threads_per_node=8)
    print(f"\nnetwork: n={g.n:,} m={g.m:,} max degree {g.max_degree()}")
    print(f"machine: {machine.describe()}")

    result = repro.connected_components(g, machine, tprime=2, validate=True)
    sizes = component_sizes(result.labels)
    print(f"\n{result.num_components} communities/components found "
          f"in {result.info.sim_time_ms:.3f} simulated ms")
    print("largest components:", ", ".join(f"{s:,}" for s in sizes[:5]))

    # Hub load-balance: per-thread edge counts are even by construction.
    from repro.graph import distribute_edges

    ep = distribute_edges(g, machine.total_threads)
    spread = ep.sizes().max() - ep.sizes().min()
    print(f"\nedge-split balance: per-thread edge counts differ by at most {spread}"
          " (the paper: 'we partition work by dividing the edges evenly')")

    # Hotspot: offload on vs off.
    rows = []
    for label, opts in [
        ("offload on", repro.OptimizationFlags.all()),
        ("offload off", repro.OptimizationFlags.all().with_(offload=False)),
    ]:
        res = repro.connected_components(g, machine, opts=opts, tprime=2)
        c = res.info.trace.counters
        rows.append([label, f"{res.info.sim_time_ms:.3f}", f"{c.remote_bytes:,}"])
    print()
    print(format_table(["config", "sim ms", "remote bytes"], rows))
    print("\n('offload' answers requests for the constant D[0] locally — the"
          "\n thread owning vertex 0 is no longer a communication hotspot)")


if __name__ == "__main__":
    main()
