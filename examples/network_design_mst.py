#!/usr/bin/env python
"""Scenario: minimum-cost network design with the lock-free MST.

A classic MST application: given candidate links with installation
costs, pick the cheapest set that connects everything.  This example
runs the paper's three MST implementations on the same instance and
reproduces the lock-overhead story of Figs. 9-10: the lock-based SMP
code barely beats sequential Kruskal, while the SetDMin rewrite on the
cluster wins outright.

Run:  python examples/network_design_mst.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench import banner, format_table
from repro.mst import check_spanning_forest


def build_instance(n: int = 40_000, seed: int = 3) -> repro.EdgeList:
    """Candidate links: a sparse random mesh with integer costs."""
    g = repro.random_graph(n, 4 * n, seed=seed)
    # Costs: mostly mid-range, a few very cheap backbone links.
    rng = np.random.default_rng(seed + 1)
    w = rng.integers(1_000, 1_000_000, g.m, dtype=np.int64)
    backbone = rng.choice(g.m, size=g.m // 100, replace=False)
    w[backbone] = rng.integers(1, 100, backbone.size)
    return g.with_weights(w)


def main() -> None:
    print(banner("minimum-cost network design (MST) on the simulated cluster"))
    g = build_instance()
    n = g.n
    print(f"\ncandidate links: n={n:,} sites, m={g.m:,} links")

    cluster = repro.cluster_for_input(n, nodes=16, threads_per_node=8)
    smp = repro.smp_for_input(n, 16)
    seq = repro.sequential_for_input(n)

    runs = {
        "collective (SetDMin, no locks)": repro.minimum_spanning_forest(
            g, cluster, impl="collective", tprime=2
        ),
        "SMP 1x16 (fine-grained locks)": repro.minimum_spanning_forest(g, smp, impl="smp"),
        "sequential Kruskal": repro.minimum_spanning_forest(g, seq, impl="kruskal"),
        "sequential Prim": repro.minimum_spanning_forest(g, seq, impl="prim"),
        "sequential Boruvka": repro.minimum_spanning_forest(g, seq, impl="boruvka"),
    }

    reference = runs["sequential Kruskal"]
    rows = []
    for label, res in runs.items():
        assert res.total_weight == reference.total_weight, "all must find the minimum"
        rows.append(
            [
                label,
                f"{res.info.sim_time_ms:.3f}",
                f"{reference.info.sim_time / res.info.sim_time:.2f}x",
                f"{res.info.trace.counters.lock_ops:,}",
            ]
        )
    print()
    print(format_table(["implementation", "sim ms", "vs Kruskal", "lock ops"], rows))

    best = runs["collective (SetDMin, no locks)"]
    check_spanning_forest(g, best.edge_ids)
    print(f"\nchosen network: {best.num_edges:,} links,"
          f" total cost {best.total_weight:,} (verified minimal)")
    print("note the SMP row: its fine-grained locks eat the parallel gains —"
          "\nthe paper's reason for inventing the SetDMin collective.")


if __name__ == "__main__":
    main()
