#!/usr/bin/env python
"""Demonstration of Algorithm 1: recursive access scheduling.

Shows the paper's central locality idea in isolation: computing
``C[i] = D[R[i]]`` for a random request vector by partitioning,
grouping (counting sort), blocked access, and permuting back.  The demo
verifies semantic equivalence with plain fancy indexing, replays both
access orders through an *exact* cache simulator to show the measured
miss reduction, and prints the paper's Eq. (4) / Eq. (5) predictions
next to the measurements.

Run:  python examples/access_scheduling_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import banner, format_table
from repro.runtime import CacheParams, CostModel, smp_node
from repro.scheduling import (
    scheduled_gather,
    scheduled_gather_time,
    simulate_set_associative,
    trace_of_gather,
    trace_of_scheduled_gather,
    unscheduled_gather_time,
    virtual_gather,
)


def main() -> None:
    print(banner("Algorithm 1: recursive access scheduling"))
    rng = np.random.default_rng(0)
    n, m = 100_000, 400_000
    d = rng.integers(0, 1_000_000, n)
    r = rng.integers(0, n, m)
    print(f"\nD has {n:,} elements; R issues {m:,} random requests (m/n = {m / n:.0f})")

    # --- semantic equivalence ------------------------------------------------
    for plan in [(4,), (16,), (16, 8), (16, 8, 4)]:
        out, stats = scheduled_gather(d, r, plan)
        assert np.array_equal(out, d[r])
        print(f"plan W={plan}: identical to D[R]  "
              f"(sorted {stats.sorted_elements:,} keys over {stats.levels} level(s),"
              f" visited {stats.blocks_visited} blocks)")

    # --- exact cache simulation ---------------------------------------------
    cache = CacheParams(size_bytes=8192, line_bytes=64, associativity=4)
    print(f"\nexact cache replay ({cache.size_bytes // 1024} KiB, "
          f"{cache.line_bytes}-byte lines, {cache.associativity}-way):")
    rows = []
    plain = simulate_set_associative(trace_of_gather(r), cache)
    rows.append(["unscheduled", f"{plain.misses:,}", f"{plain.miss_rate:.3f}", "1.00x"])
    for w in (8, 32, 128, 512):
        sim = simulate_set_associative(trace_of_scheduled_gather(r, n, w), cache)
        rows.append(
            [f"W={w}", f"{sim.misses:,}", f"{sim.miss_rate:.3f}",
             f"{plain.misses / sim.misses:.2f}x"]
        )
    print(format_table(["schedule", "misses", "miss rate", "reduction"], rows))

    # --- the paper's closed forms -------------------------------------------
    cm = CostModel(smp_node(1))
    eq4 = unscheduled_gather_time(m, cm)
    eq5 = scheduled_gather_time(m, n, 64, cm)
    print(f"\nEq. (4) unscheduled time : {eq4 * 1e3:8.3f} ms (model)")
    print(f"Eq. (5) scheduled  time : {eq5.total * 1e3:8.3f} ms (model)"
          f"  [sort {eq5.sort * 1e3:.2f} + access {eq5.access * 1e3:.2f}"
          f" + permute {eq5.permute * 1e3:.2f} + transfers]")
    print(f"predicted benefit       : {eq4 / eq5.total:.2f}x"
          "   (the paper: scheduling wins whenever m > 3n and L_M*B_M > 9)")

    # --- virtual threads (the t' mechanism of Fig. 4) ------------------------
    print("\nvirtual threads (one physical thread serving its block):")
    block = d[: n // 16]
    reqs = rng.integers(0, block.size, 50_000)
    rows = []
    for tprime in (1, 4, 16):
        _, trace = virtual_gather(block, reqs, tprime)
        sim = simulate_set_associative(trace, cache)
        rows.append([tprime, f"{sim.misses:,}", f"{sim.miss_rate:.3f}"])
    print(format_table(["t'", "misses", "miss rate"], rows))


if __name__ == "__main__":
    main()
