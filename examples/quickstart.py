#!/usr/bin/env python
"""Quickstart: connected components and MST on the simulated paper cluster.

Generates the paper's two input families at laptop scale, runs the
optimized collective implementations on the (simulated) 16-node cluster
of SMPs, self-verifies the answers, and prints what the paper's
instrumentation would have shown: modeled execution time, the six-way
time breakdown, and communication counters.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.bench import banner, format_kv


def main() -> None:
    n, density = 50_000, 4
    print(banner("repro quickstart — SC'10 PGAS graph algorithms, simulated"))

    # --- inputs: the paper's random + hybrid families -----------------------
    g_random = repro.random_graph(n, density * n, seed=0)
    g_hybrid = repro.hybrid_graph(n, density * n, seed=0)
    print(f"\nrandom graph:  n={g_random.n:,}  m={g_random.m:,}  max degree {g_random.max_degree()}")
    print(f"hybrid graph:  n={g_hybrid.n:,}  m={g_hybrid.m:,}  max degree {g_hybrid.max_degree()}"
          f"  (scale-free hubs)")

    # --- machine: the paper's best configuration, cache-calibrated ----------
    machine = repro.cluster_for_input(n, nodes=16, threads_per_node=8)
    print(f"\nmachine: {machine.describe()}")

    # --- connected components ----------------------------------------------
    cc = repro.connected_components(
        g_random, machine, impl="collective", tprime=2, validate=True
    )
    print(f"\nCC (optimized collectives): {cc.num_components} component(s)")
    print(f"  simulated time : {cc.info.sim_time_ms:9.3f} ms in {cc.info.iterations} iterations")
    print(f"  wall time      : {cc.info.wall_time * 1e3:9.1f} ms (simulation overhead)")
    print("  breakdown (avg ms/thread):")
    print("    " + format_kv(
        {k: round(v * 1e3, 4) for k, v in cc.info.breakdown().items()}
    ).replace("\n", "\n    "))
    c = cc.info.trace.counters
    print(f"  communication  : {c.remote_messages:,} messages, {c.remote_bytes:,} bytes,"
          f" {c.collective_calls} collective calls")

    # --- minimum spanning forest --------------------------------------------
    gw = repro.with_random_weights(g_random, seed=1)
    mst = repro.minimum_spanning_forest(
        gw, machine, impl="collective", tprime=2, validate=True
    )
    print(f"\nMST (lock-free SetDMin Borůvka): {mst.num_edges:,} edges,"
          f" total weight {mst.total_weight:,}")
    print(f"  simulated time : {mst.info.sim_time_ms:9.3f} ms in {mst.info.iterations} iterations")
    print(f"  locks taken    : {mst.info.trace.counters.lock_ops} (the point of SetDMin)")

    # --- compare against the baselines the paper compares against -----------
    smp = repro.connected_components(g_random, repro.smp_for_input(n, 16), impl="smp")
    seq = repro.connected_components(g_random, repro.sequential_for_input(n), impl="sequential")
    print(f"\nbaselines (CC): SMP 1x16 = {smp.info.sim_time_ms:.3f} ms,"
          f" sequential = {seq.info.sim_time_ms:.3f} ms")
    print(f"  speedup vs SMP       : {smp.info.sim_time / cc.info.sim_time:.2f}x"
          f"  (paper: 2.2x at this configuration)")
    print(f"  speedup vs sequential: {seq.info.sim_time / cc.info.sim_time:.2f}x"
          f"  (paper: ~9x)")


if __name__ == "__main__":
    main()
